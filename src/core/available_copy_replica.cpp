#include "reldev/core/available_copy_replica.hpp"

#include "reldev/util/logging.hpp"

namespace reldev::core {

AvailableCopyReplica::AvailableCopyReplica(SiteId self, GroupConfig config,
                                           storage::BlockStore& store,
                                           net::Transport& transport,
                                           WasAvailablePolicy policy)
    : ReplicaBase(self, std::move(config), store, transport),
      policy_(policy) {
  load_metadata();
}

void AvailableCopyReplica::load_metadata() {
  auto blob = store_.get_metadata();
  if (blob && !blob.value().empty()) {
    auto meta = storage::SiteMetadata::decode(blob.value());
    if (meta && meta.value().was_available.has_value()) {
      was_available_ = *meta.value().was_available;
      return;
    }
  }
  // Fresh store: every copy starts available (§4's initial state), so the
  // most conservative correct W is the full site set.
  was_available_ = config_.all_sites();
  persist_metadata();
}

void AvailableCopyReplica::persist_metadata() {
  // Read-modify-write: the metadata blob is shared with the scrubber's
  // cursor, which must survive every was-available update.
  storage::SiteMetadata meta;
  if (auto existing = store_.get_metadata();
      existing && !existing.value().empty()) {
    if (auto decoded = storage::SiteMetadata::decode(existing.value());
        decoded) {
      meta.scrub_cursor = decoded.value().scrub_cursor;
    }
  }
  meta.site = self_;
  meta.clean_shutdown = false;
  meta.was_available = was_available_;
  const auto blob = meta.encode();
  // A store dying mid-operation must not take the server down with it:
  // the in-memory W-set stays correct, the double-slot region keeps the
  // previous durable set, and the recovery closure computed from the older
  // (superset-safe) set is still correct — just more conservative.
  if (const Status status = store_.put_metadata(blob); !status.is_ok()) {
    RELDEV_WARN("available-copy")
        << "site " << self_ << ": persisting was-available set failed ("
        << status.to_string() << ")";
    return;
  }
  if (const Status status = store_.sync(); !status.is_ok()) {
    RELDEV_WARN("available-copy")
        << "site " << self_ << ": metadata sync failed ("
        << status.to_string() << ")";
  }
}

Result<storage::BlockData> AvailableCopyReplica::read(BlockId block) {
  // Reads are purely local (§3.2): every available copy holds the most
  // recent version of every block, so no network traffic at all.
  if (state_ != SiteState::kAvailable) {
    return errors::unavailable(std::string("site is ") +
                               net::site_state_name(state_));
  }
  auto stored = store_.read(block);
  if (!stored && stored.status().code() == ErrorCode::kCorruption) {
    // Purely-local reads meet media faults here: treat the torn record
    // like an out-of-date copy — demote it and refill from any peer.
    if (auto status = heal_corrupt_block(block); !status.is_ok()) {
      return status;
    }
    stored = store_.read(block);
  }
  if (!stored) return stored.status();
  return std::move(stored).value().data;
}

Status AvailableCopyReplica::write(BlockId block,
                                   std::span<const std::byte> data) {
  if (state_ != SiteState::kAvailable) {
    return errors::unavailable(std::string("site is ") +
                               net::site_state_name(state_));
  }
  if (data.size() != config_.block_size) {
    return errors::invalid_argument("payload size != block size");
  }
  auto current = store_.version_of(block);
  if (!current) return current.status();
  const storage::VersionNumber next = current.value() + 1;

  // Write to all available copies. Peers that are up and available apply
  // the write and acknowledge; the ack set *is* the new was-available set.
  net::WriteAllRequest push{block, next,
                            storage::BlockData(data.begin(), data.end()),
                            was_available_};
  const auto replies =
      transport_.multicast_call(self_, peers(), net::Message{self_, push});
  if (auto status = store_.write(block, data, next); !status.is_ok()) {
    return status;
  }

  SiteSet ack_set{self_};
  for (const auto& [site, reply] : replies) {
    if (reply.holds<net::WriteAllAck>()) ack_set.insert(site);
  }
  const bool changed = ack_set != was_available_;
  was_available_ = ack_set;
  if (changed) persist_metadata();

  if (policy_ == WasAvailablePolicy::kEagerBroadcast && changed) {
    // Push the exact ack set so every recipient's failure-order knowledge
    // is current (the atomic-broadcast variant of §3.2).
    SiteSet recipients = ack_set;
    recipients.erase(self_);
    transport_
        .multicast(self_, recipients,
                   net::Message{self_, net::WasAvailableUpdate{ack_set, true}})
        .ignore_error();
  }
  return Status::ok();
}

Status AvailableCopyReplica::write_range(BlockId first,
                                         std::span<const std::byte> data) {
  if (state_ != SiteState::kAvailable) {
    return errors::unavailable(std::string("site is ") +
                               net::site_state_name(state_));
  }
  if (data.empty() || data.size() % config_.block_size != 0) {
    return errors::invalid_argument(
        "vectored write payload must be a non-empty multiple of the block "
        "size");
  }
  const std::size_t count = data.size() / config_.block_size;
  if (auto status = check_range(first, count); !status.is_ok()) return status;

  // Batched write-all: every update in one grouped push. Recipients apply
  // the whole batch in one handler invocation, and the ack set is the new
  // was-available set exactly as in the scalar path.
  net::BatchWriteRequest push;
  push.updates.reserve(count);
  std::vector<storage::VersionNumber> next_versions(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto current = store_.version_of(first + i);
    if (!current) return current.status();
    next_versions[i] = current.value() + 1;
    const auto slice = data.subspan(i * config_.block_size, config_.block_size);
    push.updates.push_back(net::BlockUpdate{
        first + i, next_versions[i],
        storage::BlockData(slice.begin(), slice.end())});
  }
  push.was_available = was_available_;
  const auto replies = transport_.multicast_call(
      self_, peers(), net::Message{self_, std::move(push)});
  for (std::size_t i = 0; i < count; ++i) {
    const auto slice = data.subspan(i * config_.block_size, config_.block_size);
    if (auto status = store_.write(first + i, slice, next_versions[i]);
        !status.is_ok()) {
      return status;
    }
  }

  SiteSet ack_set{self_};
  for (const auto& [site, reply] : replies) {
    if (reply.holds<net::WriteAllAck>()) ack_set.insert(site);
  }
  const bool changed = ack_set != was_available_;
  was_available_ = ack_set;
  if (changed) persist_metadata();

  if (policy_ == WasAvailablePolicy::kEagerBroadcast && changed) {
    SiteSet recipients = ack_set;
    recipients.erase(self_);
    transport_
        .multicast(self_, recipients,
                   net::Message{self_, net::WasAvailableUpdate{ack_set, true}})
        .ignore_error();
  }
  return Status::ok();
}

Status AvailableCopyReplica::repair_from(SiteId source) {
  auto reply = transport_.call(
      self_, source, net::Message{self_, net::RepairRequest{local_versions()}});
  if (!reply) return reply.status();
  if (reply.value().holds<net::ErrorReply>()) {
    const auto& error = reply.value().as<net::ErrorReply>();
    return Status(static_cast<ErrorCode>(error.error_code), error.message);
  }
  if (!reply.value().holds<net::RepairReply>()) {
    return errors::protocol("unexpected reply to repair request");
  }
  return apply_repair(reply.value().as<net::RepairReply>());
}

Status AvailableCopyReplica::recover() {
  // Figure 5. We are back up but our data may be stale: comatose.
  set_state(SiteState::kComatose);

  const auto replies = transport_.multicast_call(
      self_, peers(), net::Message{self_, net::StateInquiry{}});

  // Arm 2 of the select: somebody stayed (or became) available — they hold
  // the most recent version of everything; repair from them directly.
  for (const auto& [site, reply] : replies) {
    if (!reply.holds<net::StateInfo>()) continue;
    const auto& info = reply.as<net::StateInfo>();
    if (info.state != SiteState::kAvailable) continue;
    if (auto status = repair_from(site); !status.is_ok()) return status;
    was_available_ = info.was_available;
    was_available_.insert(self_);
    persist_metadata();
    transport_
        .call(self_, site,
              net::Message{self_,
                           net::WasAvailableUpdate{was_available_, false}})
        .ignore_error();
    set_state(SiteState::kAvailable);
    return Status::ok();
  }

  // Arm 1: total failure. Wait until every site that could have failed
  // last — the closure of our was-available set — has recovered, then take
  // the highest version among them.
  WasAvailableMap known;
  std::map<SiteId, std::uint64_t> totals;
  known[self_] = was_available_;
  totals[self_] = local_versions().total();
  for (const auto& [site, reply] : replies) {
    if (!reply.holds<net::StateInfo>()) continue;
    const auto& info = reply.as<net::StateInfo>();
    known[site] = info.was_available;
    totals[site] = info.version_total;
  }
  SiteSet seed = was_available_;
  seed.insert(self_);
  if (!closure_recovered(seed, known)) {
    RELDEV_DEBUG("available-copy")
        << "site " << self_ << " stays comatose: closure not yet recovered";
    return errors::unavailable("closure of was-available set not recovered");
  }

  SiteId best = self_;
  for (const SiteId member : closure(seed, known)) {
    if (totals.at(member) > totals.at(best)) best = member;
  }
  if (best != self_) {
    if (auto status = repair_from(best); !status.is_ok()) return status;
    const auto it = known.find(best);
    RELDEV_ASSERT(it != known.end());
    was_available_ = it->second;
    was_available_.insert(self_);
    persist_metadata();
    transport_
        .call(self_, best,
              net::Message{self_,
                           net::WasAvailableUpdate{was_available_, false}})
        .ignore_error();
  }
  set_state(SiteState::kAvailable);
  RELDEV_DEBUG("available-copy")
      << "site " << self_ << " recovered (source "
      << (best == self_ ? std::string("self") : std::to_string(best)) << ")";
  return Status::ok();
}

void AvailableCopyReplica::crash() { ReplicaBase::crash(); }

net::Message AvailableCopyReplica::handle_peer(const net::Message& request) {
  if (request.holds<net::StateInquiry>()) {
    return net::Message{self_, net::StateInfo{state_, local_versions().total(),
                                              was_available_}};
  }
  if (request.holds<net::WriteAllRequest>()) {
    // Only available copies take writes; a comatose copy must finish
    // repairing first or it would mix stale and fresh blocks.
    if (state_ != SiteState::kAvailable) {
      return net::make_error(self_, errors::unavailable("copy not available"));
    }
    const auto& push = request.as<net::WriteAllRequest>();
    auto current = store_.version_of(push.block);
    if (!current) return net::make_error(self_, current.status());
    if (push.version > current.value()) {
      if (auto status = store_.write(push.block, push.data, push.version);
          !status.is_ok()) {
        return net::make_error(self_, status);
      }
    }
    if (policy_ == WasAvailablePolicy::kPiggybacked) {
      // Adopt the writer's (previous-write) set, extended with the two
      // sites known to hold this write. Lag makes it a superset — safe.
      SiteSet adopted = push.was_available;
      adopted.insert(self_);
      adopted.insert(request.from);
      if (adopted != was_available_) {
        was_available_ = std::move(adopted);
        persist_metadata();
      }
    }
    return net::Message{self_, net::WriteAllAck{}};
  }
  if (request.holds<net::BatchWriteRequest>()) {
    if (state_ != SiteState::kAvailable) {
      return net::make_error(self_, errors::unavailable("copy not available"));
    }
    const auto& push = request.as<net::BatchWriteRequest>();
    // One message, one handler invocation: the whole batch lands or the
    // error reply covers the whole batch — no torn multi-block write.
    for (const auto& update : push.updates) {
      auto current = store_.version_of(update.block);
      if (!current) return net::make_error(self_, current.status());
      if (update.version > current.value()) {
        if (auto status =
                store_.write(update.block, update.data, update.version);
            !status.is_ok()) {
          return net::make_error(self_, status);
        }
      }
    }
    if (policy_ == WasAvailablePolicy::kPiggybacked) {
      SiteSet adopted = push.was_available;
      adopted.insert(self_);
      adopted.insert(request.from);
      if (adopted != was_available_) {
        was_available_ = std::move(adopted);
        persist_metadata();
      }
    }
    return net::Message{self_, net::WriteAllAck{}};
  }
  if (request.holds<net::RepairRequest>()) {
    // Served in any non-failed state: after a total failure the highest-
    // version member of the closure is still comatose when its peers
    // repair from it.
    return net::Message{
        self_, build_repair_reply(request.as<net::RepairRequest>().versions)};
  }
  if (request.holds<net::WasAvailableUpdate>()) {
    const auto& update = request.as<net::WasAvailableUpdate>();
    SiteSet next = update.was_available;
    if (!update.replace) {
      next.insert(was_available_.begin(), was_available_.end());
    } else {
      next.insert(self_);
    }
    if (next != was_available_) {
      was_available_ = std::move(next);
      persist_metadata();
    }
    return net::Message{self_, net::WasAvailableAck{}};
  }
  return net::make_error(
      self_,
      errors::protocol(std::string("unexpected request ") + request.name()));
}

void AvailableCopyReplica::handle_peer_oneway(const net::Message& message) {
  if (message.holds<net::WasAvailableUpdate>()) {
    const auto& update = message.as<net::WasAvailableUpdate>();
    if (state_ != SiteState::kAvailable) return;  // stale knowledge is safer
    SiteSet next = update.was_available;
    if (update.replace) {
      next.insert(self_);
    } else {
      next.insert(was_available_.begin(), was_available_.end());
    }
    if (next != was_available_) {
      was_available_ = std::move(next);
      persist_metadata();
    }
    return;
  }
  RELDEV_WARN("available-copy") << "ignoring one-way " << message.name();
}

}  // namespace reldev::core
