#include "reldev/core/experiment.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>

#include "reldev/sim/arrivals.hpp"
#include "reldev/sim/availability_tracker.hpp"
#include "reldev/sim/failure.hpp"
#include "reldev/sim/simulator.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::core {

namespace {

/// Shared event plumbing: keeps a ReplicaGroup in step with a
/// FailureProcess and offers coordinator selection for workloads.
class GroupDriver final : public sim::FailureListener {
 public:
  GroupDriver(ReplicaGroup& group, Rng rng, bool refresh_writes)
      : group_(group), rng_(rng), refresh_writes_(refresh_writes),
        payload_(group.config().block_size, std::byte{0}) {}

  void on_site_failed(std::size_t site, double /*now*/) override {
    ++failures_;
    group_.crash_site(static_cast<SiteId>(site));
    if (none_up()) ++total_failures_;
    refresh();
    if (on_change_) on_change_();
  }

  void on_site_repaired(std::size_t site, double /*now*/) override {
    ++repairs_;
    group_.recover_site(static_cast<SiteId>(site)).ignore_error();
    refresh();
    if (on_change_) on_change_();
  }

  /// Optional hook run after every membership change (for trackers).
  void set_on_change(std::function<void()> hook) { on_change_ = std::move(hook); }

  /// A uniformly chosen coordinator that is up and protocol-available;
  /// nullopt when the device is unavailable from every site.
  std::optional<SiteId> pick_coordinator() {
    std::vector<SiteId> candidates;
    for (SiteId site = 0; site < group_.size(); ++site) {
      if (!group_.transport().is_up(site)) continue;
      if (group_.scheme() != SchemeKind::kVoting &&
          group_.replica(site).state() != SiteState::kAvailable) {
        continue;
      }
      candidates.push_back(site);
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[static_cast<std::size_t>(
        rng_.uniform_u64(0, candidates.size() - 1))];
  }

  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }
  [[nodiscard]] std::uint64_t total_failures() const noexcept {
    return total_failures_;
  }
  [[nodiscard]] std::span<const std::byte> payload() const noexcept {
    return payload_;
  }

 private:
  [[nodiscard]] bool none_up() const {
    const auto up = group_.up();
    return std::none_of(up.begin(), up.end(), [](bool b) { return b; });
  }

  void refresh() {
    // Keep was-available sets synchronized with the live membership, as
    // §4.2's model assumes (knowledge is updated whenever a block is
    // modified; here a modification follows every membership change).
    if (!refresh_writes_ || group_.scheme() != SchemeKind::kAvailableCopy) {
      return;
    }
    if (auto coordinator = pick_coordinator()) {
      group_.write(*coordinator, 0, payload_).ignore_error();
    }
  }

  ReplicaGroup& group_;
  Rng rng_;
  bool refresh_writes_;
  storage::BlockData payload_;
  std::function<void()> on_change_;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t total_failures_ = 0;
};

}  // namespace

AvailabilityResult run_availability_experiment(
    const AvailabilityOptions& options) {
  RELDEV_EXPECTS(options.sites >= 1);
  RELDEV_EXPECTS(options.rho >= 0.0);
  Rng rng(options.seed);

  // Tiny device: availability depends only on site state, not geometry.
  ReplicaGroup group(options.scheme,
                     GroupConfig::majority(options.sites, /*block_count=*/4,
                                           /*block_size=*/64));
  GroupDriver driver(group, rng.split(), options.refresh_writes);

  sim::Simulator simulator;
  sim::FailureProcess failures(simulator, rng.split(),
                               sim::uniform_rates(options.sites, options.rho),
                               &driver);
  sim::AvailabilityTracker tracker(options.warmup, options.horizon,
                                   options.batches);
  tracker.record(0.0, group.group_available());
  driver.set_on_change([&] {
    tracker.record(simulator.now(), group.group_available());
  });

  failures.start();
  simulator.run_until(options.warmup + options.horizon);
  tracker.finish(simulator.now());

  AvailabilityResult result;
  result.availability = tracker.availability();
  result.half_width = tracker.half_width();
  result.failures = driver.failures();
  result.repairs = driver.repairs();
  result.total_failures = driver.total_failures();
  return result;
}

TrafficResult run_traffic_experiment(const TrafficOptions& options) {
  RELDEV_EXPECTS(options.sites >= 2);
  RELDEV_EXPECTS(options.write_rate > 0.0);
  Rng rng(options.seed);

  ReplicaGroup group(
      options.scheme,
      GroupConfig::majority(options.sites, /*block_count=*/16,
                            /*block_size=*/64),
      options.mode, options.policy);
  // Traffic runs measure the protocols' own messages only: no artificial
  // refresh writes.
  GroupDriver driver(group, rng.split(), /*refresh_writes=*/false);

  sim::Simulator simulator;
  sim::FailureProcess failures(simulator, rng.split(),
                               sim::uniform_rates(options.sites, options.rho),
                               &driver);

  net::TrafficMeter& meter = group.meter();
  TrafficResult result;
  std::uint64_t write_traffic = 0;
  std::uint64_t read_traffic = 0;
  Rng workload_rng = rng.split();

  const auto run_op = [&](net::OpKind kind) {
    auto coordinator = driver.pick_coordinator();
    const net::OpScope scope(meter, kind);
    const std::uint64_t before = meter.total();
    bool ok = false;
    if (coordinator.has_value()) {
      const BlockId block = workload_rng.uniform_u64(0, 15);
      if (kind == net::OpKind::kWrite) {
        ok = group.write(*coordinator, block, driver.payload()).is_ok();
      } else {
        ok = group.read(*coordinator, block).is_ok();
      }
    }
    const std::uint64_t cost = meter.total() - before;
    if (kind == net::OpKind::kWrite) {
      if (ok) {
        ++result.writes;
        write_traffic += cost;
      } else {
        ++result.failed_writes;
      }
    } else {
      if (ok) {
        ++result.reads;
        read_traffic += cost;
      } else {
        ++result.failed_reads;
      }
    }
  };

  sim::ArrivalProcess writes(simulator, rng.split(), options.write_rate,
                             [&](double) { run_op(net::OpKind::kWrite); });
  std::unique_ptr<sim::ArrivalProcess> reads;
  if (options.reads_per_write > 0.0) {
    reads = std::make_unique<sim::ArrivalProcess>(
        simulator, rng.split(), options.write_rate * options.reads_per_write,
        [&](double) { run_op(net::OpKind::kRead); });
  }

  // Repair events run outside any read/write OpScope, so with the default
  // operation set to kRecovery every transmission caused by site recovery
  // (state inquiries, version-vector exchanges, block transfers) is
  // attributed to recovery automatically.
  meter.set_current_op(net::OpKind::kRecovery);

  failures.start();
  writes.start();
  if (reads) reads->start();
  simulator.run_until(options.horizon);
  writes.stop();
  if (reads) reads->stop();

  result.repairs = driver.repairs();
  if (result.writes > 0) {
    result.per_write =
        static_cast<double>(write_traffic) / static_cast<double>(result.writes);
  }
  if (result.reads > 0) {
    result.per_read =
        static_cast<double>(read_traffic) / static_cast<double>(result.reads);
  }
  if (result.repairs > 0) {
    result.per_recovery =
        static_cast<double>(meter.count(net::OpKind::kRecovery)) /
        static_cast<double>(result.repairs);
  }
  result.per_workload_unit =
      result.per_write + options.reads_per_write * result.per_read;
  return result;
}

RecoveryResult run_recovery_experiment(const RecoveryOptions& options) {
  RELDEV_EXPECTS(options.sites >= 2);
  Rng rng(options.seed);
  ReplicaGroup group(options.scheme,
                     GroupConfig::majority(options.sites, 4, 64));
  GroupDriver driver(group, rng.split(), /*refresh_writes=*/true);

  sim::Simulator simulator;
  sim::FailureProcess failures(
      simulator, rng.split(),
      sim::uniform_rates(options.sites, options.rho, options.repair_shape),
      &driver);

  RecoveryResult result;
  bool in_outage = false;
  double outage_start = 0.0;
  double outage_sum = 0.0;
  driver.set_on_change([&] {
    const bool available = group.group_available();
    const auto up = group.up();
    if (!in_outage && !available &&
        std::none_of(up.begin(), up.end(), [](bool b) { return b; })) {
      // All sites down: a total failure begins.
      in_outage = true;
      outage_start = simulator.now();
      ++result.total_failures;
    } else if (in_outage && available) {
      const double outage = simulator.now() - outage_start;
      outage_sum += outage;
      result.max_outage = std::max(result.max_outage, outage);
      in_outage = false;
    }
  });

  failures.start();
  simulator.run_until(options.horizon);
  if (result.total_failures > 0) {
    const auto completed =
        result.total_failures - (in_outage ? 1u : 0u);
    if (completed > 0) {
      result.mean_outage = outage_sum / static_cast<double>(completed);
    }
  }
  return result;
}

}  // namespace reldev::core
