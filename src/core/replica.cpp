#include "reldev/core/replica.hpp"

#include "reldev/storage/scrubber.hpp"
#include "reldev/util/logging.hpp"

namespace reldev::core {

ReplicaBase::ReplicaBase(SiteId self, GroupConfig config,
                         storage::BlockStore& store, net::Transport& transport)
    : self_(self),
      config_(std::move(config)),
      store_(store),
      transport_(transport) {
  config_.validate();
  RELDEV_EXPECTS(self < config_.site_count());
  RELDEV_EXPECTS(store.block_count() == config_.block_count);
  RELDEV_EXPECTS(store.block_size() == config_.block_size);
}

void ReplicaBase::crash() { state_ = SiteState::kFailed; }

Status ReplicaBase::check_range(BlockId first, std::size_t count) const {
  if (count == 0) {
    return errors::invalid_argument("vectored operation on empty range");
  }
  if (first >= config_.block_count || count > config_.block_count - first) {
    return errors::invalid_argument("block range out of bounds");
  }
  return Status::ok();
}

Result<storage::BlockData> ReplicaBase::read_range(BlockId first,
                                                   std::size_t count) {
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  storage::BlockData out;
  out.reserve(count * config_.block_size);
  for (std::size_t i = 0; i < count; ++i) {
    auto block = read(first + i);
    if (!block) return block.status();
    out.insert(out.end(), block.value().begin(), block.value().end());
  }
  return out;
}

Status ReplicaBase::write_range(BlockId first, std::span<const std::byte> data) {
  if (data.empty() || data.size() % config_.block_size != 0) {
    return errors::invalid_argument(
        "vectored write payload must be a non-empty multiple of the block "
        "size");
  }
  const std::size_t count = data.size() / config_.block_size;
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  for (std::size_t i = 0; i < count; ++i) {
    auto status = write(first + i,
                        data.subspan(i * config_.block_size,
                                     config_.block_size));
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

SiteSet ReplicaBase::peers() const {
  SiteSet all = config_.all_sites();
  all.erase(self_);
  return all;
}

net::Message ReplicaBase::handle(const net::Message& request) {
  if (state_ == SiteState::kFailed) {
    // Defense in depth: a fail-stopped site answers nothing. Transports
    // should never deliver here, but a racing TCP client might.
    return net::make_error(self_, errors::unavailable("site is failed"));
  }
  if (request.holds<net::ClientReadRequest>()) {
    auto data = read(request.as<net::ClientReadRequest>().block);
    net::ClientReadReply reply;
    reply.error_code = static_cast<std::uint8_t>(data.status().code());
    if (data) reply.data = std::move(data).value();
    return net::Message{self_, std::move(reply)};
  }
  if (request.holds<net::ClientWriteRequest>()) {
    const auto& payload = request.as<net::ClientWriteRequest>();
    const Status status = write(payload.block, payload.data);
    return net::Message{
        self_,
        net::ClientWriteReply{static_cast<std::uint8_t>(status.code())}};
  }
  if (request.holds<net::MultiBlockReadRequest>()) {
    const auto& payload = request.as<net::MultiBlockReadRequest>();
    auto data = read_range(payload.first, payload.count);
    net::MultiBlockReadReply reply;
    reply.error_code = static_cast<std::uint8_t>(data.status().code());
    if (data) reply.data = std::move(data).value();
    return net::Message{self_, std::move(reply)};
  }
  if (request.holds<net::MultiBlockWriteRequest>()) {
    const auto& payload = request.as<net::MultiBlockWriteRequest>();
    const Status status = write_range(payload.first, payload.data);
    return net::Message{
        self_,
        net::MultiBlockWriteAck{static_cast<std::uint8_t>(status.code())}};
  }
  if (request.holds<net::DeviceInfoRequest>()) {
    return net::Message{self_,
                        net::DeviceInfoReply{config_.block_count,
                                             config_.block_size}};
  }
  // Scheme-independent anti-entropy serving: digests and payload fetches
  // work the same for every engine, so a scrubbing peer can compare against
  // any scheme. A comatose site still answers — its data is exactly what
  // the requester wants to compare against, and the version guard on the
  // requesting side discards anything stale.
  if (request.holds<net::DigestRequest>()) {
    const auto& digest = request.as<net::DigestRequest>();
    if (auto status = check_range(digest.first, digest.count);
        !status.is_ok()) {
      return net::make_error(self_, status);
    }
    auto scan = storage::scan_digests(store_, digest.first, digest.count);
    if (!scan) return net::make_error(self_, scan.status());
    return net::Message{self_,
                        net::DigestReply{digest.first,
                                         std::move(scan.value().versions),
                                         std::move(scan.value().digests)}};
  }
  if (request.holds<net::BlockFetchRequest>()) {
    const BlockId block = request.as<net::BlockFetchRequest>().block;
    auto stored = store_.read(block);
    if (!stored) {
      // A torn record must not be shipped; demote it so our next vote or
      // digest offers version 0 and the fetcher goes elsewhere.
      if (stored.status().code() == ErrorCode::kCorruption) {
        store_.demote(block).ignore_error();
      }
      return net::make_error(self_, stored.status());
    }
    return net::Message{self_,
                        net::BlockFetchReply{stored.value().version,
                                             std::move(stored).value().data}};
  }
  if (request.holds<net::BatchFetchRequest>()) {
    net::BatchFetchReply reply;
    const auto& fetch = request.as<net::BatchFetchRequest>();
    reply.updates.reserve(fetch.blocks.size());
    for (const BlockId block : fetch.blocks) {
      auto stored = store_.read(block);
      if (!stored) {
        if (stored.status().code() == ErrorCode::kCorruption) {
          store_.demote(block).ignore_error();
        }
        return net::make_error(self_, stored.status());
      }
      reply.updates.push_back(net::BlockUpdate{
          block, stored.value().version, std::move(stored).value().data});
    }
    return net::Message{self_, std::move(reply)};
  }
  return handle_peer(request);
}

void ReplicaBase::handle_oneway(const net::Message& message) {
  if (state_ == SiteState::kFailed) return;
  handle_peer_oneway(message);
}

net::RepairReply ReplicaBase::build_repair_reply(
    const storage::VersionVector& theirs) const {
  net::RepairReply reply;
  reply.versions = local_versions();
  bool demoted_any = false;
  for (const BlockId block : theirs.stale_against(reply.versions)) {
    auto stored = store_.read(block);
    if (!stored) {
      // Never ship a torn record to a repairing peer: demote it locally to
      // needs-repair and withhold it from the reply.
      RELDEV_WARN("replica") << "site " << self_ << ": block " << block
                             << " unreadable while serving repair ("
                             << stored.status().to_string() << "); demoting";
      store_.demote(block).ignore_error();
      demoted_any = true;
      continue;
    }
    reply.blocks.push_back(net::BlockUpdate{block,
                                            stored.value().version,
                                            std::move(stored).value().data});
  }
  if (demoted_any) reply.versions = local_versions();
  return reply;
}

Status ReplicaBase::apply_repair(const net::RepairReply& reply) {
  for (const auto& update : reply.blocks) {
    auto current = store_.version_of(update.block);
    if (!current) return current.status();
    if (update.version <= current.value()) continue;  // we are newer; keep ours
    if (auto status = store_.write(update.block, update.data, update.version);
        !status.is_ok()) {
      return status;
    }
  }
  RELDEV_TRACE("replica") << "site " << self_ << " repaired "
                          << reply.blocks.size() << " blocks";
  return Status::ok();
}

Status ReplicaBase::heal_corrupt_block(BlockId block) {
  RELDEV_WARN("replica") << "site " << self_ << ": block " << block
                         << " corrupt locally; healing from peers";
  if (auto status = store_.demote(block); !status.is_ok()) return status;
  const auto replies = transport_.multicast_call(
      self_, peers(),
      net::Message{self_, net::RepairRequest{local_versions()}});
  bool healed = false;
  for (const auto& [site, reply] : replies) {
    if (!reply.holds<net::RepairReply>()) continue;
    if (auto status = apply_repair(reply.as<net::RepairReply>());
        !status.is_ok()) {
      return status;
    }
    healed = true;
  }
  if (!healed) {
    return errors::corruption(
        "block " + std::to_string(block) +
        " corrupt locally and no peer reachable to heal it");
  }
  return Status::ok();
}

Result<std::vector<BlockId>> ReplicaBase::scrub_heal_stale(
    const std::vector<BlockId>& blocks, SiteId source) {
  auto reply = transport_.call(
      self_, source, net::Message{self_, net::BatchFetchRequest{blocks}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::BatchFetchReply>()) {
    return errors::protocol("unexpected reply to scrub batch fetch");
  }
  std::vector<BlockId> healed;
  for (const auto& update : reply.value().as<net::BatchFetchReply>().updates) {
    auto current = store_.version_of(update.block);
    if (!current) return current.status();
    if (update.version <= current.value()) continue;  // local copy is newer
    if (auto status = store_.write(update.block, update.data, update.version);
        !status.is_ok()) {
      return status;
    }
    healed.push_back(update.block);
  }
  RELDEV_TRACE("replica") << "site " << self_ << " scrub-healed "
                          << healed.size() << " stale block(s) from site "
                          << source;
  return healed;
}

Status ReplicaBase::scrub_heal_corrupt(BlockId block) {
  return heal_corrupt_block(block);
}

}  // namespace reldev::core
