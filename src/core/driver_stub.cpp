#include "reldev/core/driver_stub.hpp"

namespace reldev::core {

DriverStub::DriverStub(net::Transport& transport, SiteId client_id,
                       std::vector<SiteId> servers, std::size_t block_count,
                       std::size_t block_size)
    : transport_(transport),
      client_id_(client_id),
      servers_(std::move(servers)),
      block_count_(block_count),
      block_size_(block_size) {
  RELDEV_EXPECTS(!servers_.empty());
  RELDEV_EXPECTS(block_count_ > 0);
  RELDEV_EXPECTS(block_size_ > 0);
}

Result<DriverStub> DriverStub::connect(net::Transport& transport,
                                       SiteId client_id,
                                       std::vector<SiteId> servers) {
  if (servers.empty()) {
    return errors::invalid_argument("no servers configured");
  }
  for (const SiteId server : servers) {
    auto reply = transport.call(client_id, server,
                                net::Message{client_id,
                                             net::DeviceInfoRequest{}});
    if (!reply) continue;
    if (!reply.value().holds<net::DeviceInfoReply>()) continue;
    const auto& info = reply.value().as<net::DeviceInfoReply>();
    return DriverStub(transport, client_id, std::move(servers),
                      info.block_count, info.block_size);
  }
  return errors::unavailable("no server reachable for device info");
}

Result<net::Message> DriverStub::call_any(const net::Message& request) {
  Status last = errors::unavailable("no server reachable");
  for (const SiteId server : servers_) {
    auto reply = transport_.call(client_id_, server, request);
    if (!reply) {
      last = reply.status();
      continue;
    }
    // A server that answered "unavailable" may simply lack a quorum or be
    // comatose; another server might still serve the request.
    if (reply.value().holds<net::ClientReadReply>() &&
        reply.value().as<net::ClientReadReply>().error_code ==
            static_cast<std::uint8_t>(ErrorCode::kUnavailable)) {
      last = errors::unavailable("server " + std::to_string(server) +
                                 " has no available copy/quorum");
      continue;
    }
    if (reply.value().holds<net::ClientWriteReply>() &&
        reply.value().as<net::ClientWriteReply>().error_code ==
            static_cast<std::uint8_t>(ErrorCode::kUnavailable)) {
      last = errors::unavailable("server " + std::to_string(server) +
                                 " has no available copy/quorum");
      continue;
    }
    last_server_ = server;
    return reply;
  }
  return last;
}

Result<storage::BlockData> DriverStub::read_block(BlockId block) {
  auto reply = call_any(
      net::Message{client_id_, net::ClientReadRequest{block}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::ClientReadReply>()) {
    return errors::protocol("unexpected reply to client read");
  }
  auto& payload = reply.value();
  const auto& read_reply = payload.as<net::ClientReadReply>();
  if (read_reply.error_code != 0) {
    return Status(static_cast<ErrorCode>(read_reply.error_code),
                  "server-side read failed");
  }
  return read_reply.data;
}

Status DriverStub::write_block(BlockId block,
                               std::span<const std::byte> data) {
  if (data.size() != block_size_) {
    return errors::invalid_argument("payload size != block size");
  }
  net::ClientWriteRequest request{block,
                                  storage::BlockData(data.begin(), data.end())};
  auto reply =
      call_any(net::Message{client_id_, std::move(request)});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::ClientWriteReply>()) {
    return errors::protocol("unexpected reply to client write");
  }
  const auto code = reply.value().as<net::ClientWriteReply>().error_code;
  if (code != 0) {
    return Status(static_cast<ErrorCode>(code), "server-side write failed");
  }
  return Status::ok();
}

}  // namespace reldev::core
