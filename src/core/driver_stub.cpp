#include "reldev/core/driver_stub.hpp"

#include <algorithm>
#include <thread>

#include "reldev/util/lockdep.hpp"

namespace reldev::core {

bool is_retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kTimeout:
    case ErrorCode::kCorruption:
      return true;
    default:
      return false;
  }
}

DriverStub::DriverStub(net::Transport& transport, SiteId client_id,
                       std::vector<SiteId> servers, std::size_t block_count,
                       std::size_t block_size, RetryPolicy policy)
    : transport_(transport),
      client_id_(client_id),
      servers_(std::move(servers)),
      block_count_(block_count),
      block_size_(block_size),
      state_(std::make_unique<RetryState>(policy, policy.jitter_seed)) {
  RELDEV_EXPECTS(!servers_.empty());
  RELDEV_EXPECTS(block_count_ > 0);
  RELDEV_EXPECTS(block_size_ > 0);
  RELDEV_EXPECTS(policy.max_rounds > 0);
}

Result<DriverStub> DriverStub::connect(net::Transport& transport,
                                       SiteId client_id,
                                       std::vector<SiteId> servers,
                                       RetryPolicy policy) {
  if (servers.empty()) {
    return errors::invalid_argument("no servers configured");
  }
  for (const SiteId server : servers) {
    auto reply = transport.call(client_id, server,
                                net::Message{client_id,
                                             net::DeviceInfoRequest{}});
    if (!reply) continue;
    if (!reply.value().holds<net::DeviceInfoReply>()) continue;
    const auto& info = reply.value().as<net::DeviceInfoReply>();
    return DriverStub(transport, client_id, std::move(servers),
                      info.block_count, info.block_size, policy);
  }
  return errors::unavailable("no server reachable for device info");
}

namespace {

/// True when the server answered but could not serve (no quorum / no
/// available copy): another server might still serve the same request.
bool replied_unavailable(const net::Message& reply) {
  constexpr auto kUnavailable =
      static_cast<std::uint8_t>(ErrorCode::kUnavailable);
  if (reply.holds<net::ClientReadReply>()) {
    return reply.as<net::ClientReadReply>().error_code == kUnavailable;
  }
  if (reply.holds<net::ClientWriteReply>()) {
    return reply.as<net::ClientWriteReply>().error_code == kUnavailable;
  }
  if (reply.holds<net::MultiBlockReadReply>()) {
    return reply.as<net::MultiBlockReadReply>().error_code == kUnavailable;
  }
  if (reply.holds<net::MultiBlockWriteAck>()) {
    return reply.as<net::MultiBlockWriteAck>().error_code == kUnavailable;
  }
  return false;
}

}  // namespace

Result<net::Message> DriverStub::call_any(const net::Message& request) {
  using Clock = std::chrono::steady_clock;
  // Snapshot the policy and the sticky-scan start once; accumulate the
  // failure detail in a local and publish it at every exit so the lock is
  // never held across a transport call or a backoff sleep.
  RetryPolicy policy;
  std::size_t start = 0;
  {
    const MutexLock lock(state_->mutex);
    policy = state_->policy;
    start = state_->last_index < servers_.size() ? state_->last_index : 0;
  }
  const auto deadline = Clock::now() + policy.op_deadline;
  FailureDetail failure;
  failure.last_error = errors::unavailable("no server reachable");

  for (std::size_t round = 0; round < policy.max_rounds; ++round) {
    if (round > 0) {
      // Full jitter: uniform in (0, cap], where the cap doubles (by the
      // multiplier) each round. Never sleep past the op deadline.
      double cap = static_cast<double>(policy.initial_backoff.count());
      for (std::size_t r = 1; r < round; ++r) cap *= policy.backoff_multiplier;
      cap = std::min(cap, static_cast<double>(policy.max_backoff.count()));
      const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      std::int64_t sleep_ms = 0;
      {
        const MutexLock lock(state_->mutex);
        sleep_ms = static_cast<std::int64_t>(
            state_->jitter.uniform(0.0, std::max(cap, 1.0)));
      }
      const auto backoff = std::min<std::int64_t>(sleep_ms, budget.count());
      if (backoff > 0) {
        lockdep::check_blocking("sleep(retry-backoff)");
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    // Sticky scan: start at the last server that answered. After a failover
    // the stub keeps talking to the server that worked instead of
    // re-probing the dead head of the list on every operation.
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (Clock::now() >= deadline) {
        failure.last_error =
            errors::timeout("op deadline (" +
                            std::to_string(policy.op_deadline.count()) +
                            "ms) exhausted");
        break;
      }
      const std::size_t index = (start + i) % servers_.size();
      const SiteId server = servers_[index];
      ++failure.attempts;
      auto reply = transport_.call(client_id_, server, request);
      if (!reply) {
        failure.last_error = reply.status();
        failure.last_site = server;
        if (!is_retryable(reply.status().code())) {
          const MutexLock lock(state_->mutex);
          state_->failure = failure;
          return reply.status();
        }
        continue;
      }
      if (replied_unavailable(reply.value())) {
        failure.last_error =
            errors::unavailable("no available copy/quorum");
        failure.last_site = server;
        continue;
      }
      const MutexLock lock(state_->mutex);
      state_->last_server = server;
      state_->last_index = index;
      state_->failure = failure;
      return reply;
    }
    ++failure.rounds;
    if (Clock::now() >= deadline) break;
  }
  // Exhausted: summarize as kUnavailable (the device-level meaning) but
  // carry the structured detail — and keep the raw last error, with its
  // original code, in last_failure() for callers that want to classify.
  {
    const MutexLock lock(state_->mutex);
    state_->failure = failure;
  }
  return errors::unavailable(
      "all " + std::to_string(servers_.size()) + " server(s) exhausted after " +
      std::to_string(failure.attempts) + " attempt(s) over " +
      std::to_string(failure.rounds) + " round(s); last error from site " +
      std::to_string(failure.last_site) + ": " +
      failure.last_error.to_string());
}

Result<storage::BlockData> DriverStub::read_block(BlockId block) {
  auto reply = call_any(
      net::Message{client_id_, net::ClientReadRequest{block}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::ClientReadReply>()) {
    return errors::protocol("unexpected reply to client read");
  }
  auto& payload = reply.value();
  const auto& read_reply = payload.as<net::ClientReadReply>();
  if (read_reply.error_code != 0) {
    return Status(static_cast<ErrorCode>(read_reply.error_code),
                  "server-side read failed");
  }
  return read_reply.data;
}

Status DriverStub::write_block(BlockId block,
                               std::span<const std::byte> data) {
  if (data.size() != block_size_) {
    return errors::invalid_argument("payload size != block size");
  }
  net::ClientWriteRequest request{block,
                                  storage::BlockData(data.begin(), data.end())};
  auto reply =
      call_any(net::Message{client_id_, std::move(request)});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::ClientWriteReply>()) {
    return errors::protocol("unexpected reply to client write");
  }
  const auto code = reply.value().as<net::ClientWriteReply>().error_code;
  if (code != 0) {
    return Status(static_cast<ErrorCode>(code), "server-side write failed");
  }
  return Status::ok();
}

Result<storage::BlockData> DriverStub::read_blocks(BlockId first,
                                                   std::size_t count) {
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  auto reply = call_any(net::Message{
      client_id_,
      net::MultiBlockReadRequest{first, static_cast<std::uint32_t>(count)}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::MultiBlockReadReply>()) {
    return errors::protocol("unexpected reply to multi-block read");
  }
  auto& payload = reply.value();
  const auto& read_reply = payload.as<net::MultiBlockReadReply>();
  if (read_reply.error_code != 0) {
    return Status(static_cast<ErrorCode>(read_reply.error_code),
                  "server-side multi-block read failed");
  }
  if (read_reply.data.size() != count * block_size_) {
    return errors::protocol("multi-block read returned wrong payload size");
  }
  return read_reply.data;
}

Status DriverStub::write_blocks(BlockId first,
                                std::span<const std::byte> data) {
  if (data.empty() || data.size() % block_size_ != 0) {
    return errors::invalid_argument(
        "vectored write payload must be a non-empty multiple of the block "
        "size");
  }
  if (auto status = check_range(first, data.size() / block_size_);
      !status.is_ok()) {
    return status;
  }
  net::MultiBlockWriteRequest request{
      first, storage::BlockData(data.begin(), data.end())};
  auto reply = call_any(net::Message{client_id_, std::move(request)});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::MultiBlockWriteAck>()) {
    return errors::protocol("unexpected reply to multi-block write");
  }
  const auto code = reply.value().as<net::MultiBlockWriteAck>().error_code;
  if (code != 0) {
    return Status(static_cast<ErrorCode>(code),
                  "server-side multi-block write failed");
  }
  return Status::ok();
}

}  // namespace reldev::core
