#include "reldev/core/driver_stub.hpp"

namespace reldev::core {

DriverStub::DriverStub(net::Transport& transport, SiteId client_id,
                       std::vector<SiteId> servers, std::size_t block_count,
                       std::size_t block_size)
    : transport_(transport),
      client_id_(client_id),
      servers_(std::move(servers)),
      block_count_(block_count),
      block_size_(block_size) {
  RELDEV_EXPECTS(!servers_.empty());
  RELDEV_EXPECTS(block_count_ > 0);
  RELDEV_EXPECTS(block_size_ > 0);
}

Result<DriverStub> DriverStub::connect(net::Transport& transport,
                                       SiteId client_id,
                                       std::vector<SiteId> servers) {
  if (servers.empty()) {
    return errors::invalid_argument("no servers configured");
  }
  for (const SiteId server : servers) {
    auto reply = transport.call(client_id, server,
                                net::Message{client_id,
                                             net::DeviceInfoRequest{}});
    if (!reply) continue;
    if (!reply.value().holds<net::DeviceInfoReply>()) continue;
    const auto& info = reply.value().as<net::DeviceInfoReply>();
    return DriverStub(transport, client_id, std::move(servers),
                      info.block_count, info.block_size);
  }
  return errors::unavailable("no server reachable for device info");
}

namespace {

/// True when the server answered but could not serve (no quorum / no
/// available copy): another server might still serve the same request.
bool replied_unavailable(const net::Message& reply) {
  constexpr auto kUnavailable =
      static_cast<std::uint8_t>(ErrorCode::kUnavailable);
  if (reply.holds<net::ClientReadReply>()) {
    return reply.as<net::ClientReadReply>().error_code == kUnavailable;
  }
  if (reply.holds<net::ClientWriteReply>()) {
    return reply.as<net::ClientWriteReply>().error_code == kUnavailable;
  }
  if (reply.holds<net::MultiBlockReadReply>()) {
    return reply.as<net::MultiBlockReadReply>().error_code == kUnavailable;
  }
  if (reply.holds<net::MultiBlockWriteAck>()) {
    return reply.as<net::MultiBlockWriteAck>().error_code == kUnavailable;
  }
  return false;
}

}  // namespace

Result<net::Message> DriverStub::call_any(const net::Message& request) {
  Status last = errors::unavailable("no server reachable");
  // Sticky scan: start at the last server that answered. After a failover
  // the stub keeps talking to the server that worked instead of re-probing
  // the dead head of the list on every operation.
  const std::size_t start = last_index_ < servers_.size() ? last_index_ : 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const std::size_t index = (start + i) % servers_.size();
    const SiteId server = servers_[index];
    auto reply = transport_.call(client_id_, server, request);
    if (!reply) {
      last = reply.status();
      continue;
    }
    if (replied_unavailable(reply.value())) {
      last = errors::unavailable("server " + std::to_string(server) +
                                 " has no available copy/quorum");
      continue;
    }
    last_server_ = server;
    last_index_ = index;
    return reply;
  }
  return last;
}

Result<storage::BlockData> DriverStub::read_block(BlockId block) {
  auto reply = call_any(
      net::Message{client_id_, net::ClientReadRequest{block}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::ClientReadReply>()) {
    return errors::protocol("unexpected reply to client read");
  }
  auto& payload = reply.value();
  const auto& read_reply = payload.as<net::ClientReadReply>();
  if (read_reply.error_code != 0) {
    return Status(static_cast<ErrorCode>(read_reply.error_code),
                  "server-side read failed");
  }
  return read_reply.data;
}

Status DriverStub::write_block(BlockId block,
                               std::span<const std::byte> data) {
  if (data.size() != block_size_) {
    return errors::invalid_argument("payload size != block size");
  }
  net::ClientWriteRequest request{block,
                                  storage::BlockData(data.begin(), data.end())};
  auto reply =
      call_any(net::Message{client_id_, std::move(request)});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::ClientWriteReply>()) {
    return errors::protocol("unexpected reply to client write");
  }
  const auto code = reply.value().as<net::ClientWriteReply>().error_code;
  if (code != 0) {
    return Status(static_cast<ErrorCode>(code), "server-side write failed");
  }
  return Status::ok();
}

Result<storage::BlockData> DriverStub::read_blocks(BlockId first,
                                                   std::size_t count) {
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  auto reply = call_any(net::Message{
      client_id_,
      net::MultiBlockReadRequest{first, static_cast<std::uint32_t>(count)}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::MultiBlockReadReply>()) {
    return errors::protocol("unexpected reply to multi-block read");
  }
  auto& payload = reply.value();
  const auto& read_reply = payload.as<net::MultiBlockReadReply>();
  if (read_reply.error_code != 0) {
    return Status(static_cast<ErrorCode>(read_reply.error_code),
                  "server-side multi-block read failed");
  }
  if (read_reply.data.size() != count * block_size_) {
    return errors::protocol("multi-block read returned wrong payload size");
  }
  return read_reply.data;
}

Status DriverStub::write_blocks(BlockId first,
                                std::span<const std::byte> data) {
  if (data.empty() || data.size() % block_size_ != 0) {
    return errors::invalid_argument(
        "vectored write payload must be a non-empty multiple of the block "
        "size");
  }
  if (auto status = check_range(first, data.size() / block_size_);
      !status.is_ok()) {
    return status;
  }
  net::MultiBlockWriteRequest request{
      first, storage::BlockData(data.begin(), data.end())};
  auto reply = call_any(net::Message{client_id_, std::move(request)});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::MultiBlockWriteAck>()) {
    return errors::protocol("unexpected reply to multi-block write");
  }
  const auto code = reply.value().as<net::MultiBlockWriteAck>().error_code;
  if (code != 0) {
    return Status(static_cast<ErrorCode>(code),
                  "server-side multi-block write failed");
  }
  return Status::ok();
}

}  // namespace reldev::core
