#include "reldev/net/inproc_transport.hpp"

#include "reldev/util/assert.hpp"

namespace reldev::net {

InProcTransport::InProcTransport(AddressingMode mode) : mode_(mode) {}

void InProcTransport::bind(SiteId site, MessageHandler* handler) {
  RELDEV_EXPECTS(handler != nullptr);
  handlers_[site] = handler;
  up_.try_emplace(site, true);
  partition_.try_emplace(site, 0);
}

void InProcTransport::unbind(SiteId site) {
  handlers_.erase(site);
  up_.erase(site);
  partition_.erase(site);
}

void InProcTransport::set_up(SiteId site, bool up) { up_[site] = up; }

bool InProcTransport::is_up(SiteId site) const {
  auto it = up_.find(site);
  return it != up_.end() && it->second;
}

void InProcTransport::set_partition_group(SiteId site, int group) {
  partition_[site] = group;
}

void InProcTransport::clear_partitions() {
  for (auto& [site, group] : partition_) group = 0;
}

bool InProcTransport::reachable(SiteId from, SiteId to) const {
  if (!is_up(to)) return false;
  if (handlers_.find(to) == handlers_.end()) return false;
  const auto a = partition_.find(from);
  const auto b = partition_.find(to);
  const int group_a = a == partition_.end() ? 0 : a->second;
  const int group_b = b == partition_.end() ? 0 : b->second;
  return group_a == group_b;
}

void InProcTransport::count(std::uint64_t transmissions) const {
  if (meter_ != nullptr) meter_->add(transmissions);
}

Result<Message> InProcTransport::call(SiteId from, SiteId to,
                                      const Message& request) {
  count(1);  // the request is sent whether or not the peer answers
  if (!reachable(from, to)) {
    return errors::unavailable("site " + std::to_string(to) +
                               " is unreachable");
  }
  Message reply = handlers_.at(to)->handle(request);
  count(1);  // the reply
  return reply;
}

Status InProcTransport::send(SiteId from, SiteId to, const Message& message) {
  count(1);
  if (!reachable(from, to)) return Status::ok();  // dropped, fail-stop peer
  handlers_.at(to)->handle_oneway(message);
  return Status::ok();
}

Status InProcTransport::multicast(SiteId from, const SiteSet& to,
                                  const Message& message) {
  if (to.empty()) return Status::ok();
  count(mode_ == AddressingMode::kMulticast ? 1 : to.size());
  for (const SiteId dest : to) {
    if (dest == from) continue;
    if (!reachable(from, dest)) continue;
    handlers_.at(dest)->handle_oneway(message);
  }
  return Status::ok();
}

std::vector<GatherReply> InProcTransport::multicast_call(
    SiteId from, const SiteSet& to, const Message& request,
    const EarlyStop& early_stop) {
  std::vector<GatherReply> replies;
  if (to.empty()) return replies;
  count(mode_ == AddressingMode::kMulticast ? 1 : to.size());
  bool stopped = false;
  for (const SiteId dest : to) {
    if (dest == from) continue;
    if (!reachable(from, dest)) continue;
    Message reply = handlers_.at(dest)->handle(request);
    count(1);  // each responder answers individually in either mode
    if (stopped) continue;  // straggler: transmitted and metered, not gathered
    replies.emplace_back(dest, std::move(reply));
    if (early_stop && early_stop(replies)) stopped = true;
  }
  return replies;
}

}  // namespace reldev::net
