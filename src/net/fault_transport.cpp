#include "reldev/net/fault_transport.hpp"

#include <string>
#include <thread>
#include <vector>

#include "reldev/util/lockdep.hpp"

namespace reldev::net {

namespace {

std::string link_name(SiteId from, SiteId to) {
  return std::to_string(from) + "->" + std::to_string(to);
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 std::uint64_t seed)
    : inner_(inner), rng_(seed) {}

void FaultInjectingTransport::set_default_rule(const FaultRule& rule) {
  const MutexLock lock(mutex_);
  default_rule_ = rule;
}

void FaultInjectingTransport::set_link_rule(SiteId from, SiteId to,
                                            const FaultRule& rule) {
  const MutexLock lock(mutex_);
  link_rules_[{from, to}] = rule;
}

FaultRule FaultInjectingTransport::link_rule(SiteId from, SiteId to) const {
  const MutexLock lock(mutex_);
  return rule_for_locked(from, to);
}

void FaultInjectingTransport::clear_link_rule(SiteId from, SiteId to) {
  const MutexLock lock(mutex_);
  link_rules_.erase({from, to});
}

void FaultInjectingTransport::block_link(SiteId from, SiteId to) {
  const MutexLock lock(mutex_);
  link_rules_[{from, to}].blocked = true;
}

void FaultInjectingTransport::block_pair(SiteId a, SiteId b) {
  const MutexLock lock(mutex_);
  link_rules_[{a, b}].blocked = true;
  link_rules_[{b, a}].blocked = true;
}

void FaultInjectingTransport::heal() {
  const MutexLock lock(mutex_);
  link_rules_.clear();
  default_rule_ = FaultRule{};
}

void FaultInjectingTransport::reseed(std::uint64_t seed) {
  const MutexLock lock(mutex_);
  rng_ = Rng(seed);
}

FaultStats FaultInjectingTransport::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

void FaultInjectingTransport::reset_stats() {
  const MutexLock lock(mutex_);
  stats_ = FaultStats{};
}

const FaultRule& FaultInjectingTransport::rule_for_locked(
    SiteId from, SiteId to) const {
  const auto it = link_rules_.find({from, to});
  return it == link_rules_.end() ? default_rule_ : it->second;
}

FaultInjectingTransport::Fate FaultInjectingTransport::decide(SiteId from,
                                                              SiteId to) {
  const MutexLock lock(mutex_);
  const FaultRule& rule = rule_for_locked(from, to);
  Fate fate;
  fate.delay = rule.delay;
  if (rule.blocked) {
    ++stats_.blocked;
    fate.kind = FateKind::kBlocked;
    return fate;
  }
  if (rule.drop > 0.0 && rng_.bernoulli(rule.drop)) {
    ++stats_.dropped;
    // Either half of the round trip can be the one that dies; both leave
    // the caller with a timeout, but only a lost reply leaves the peer
    // having executed the request — the at-most-once ambiguity.
    fate.kind = rng_.bernoulli(0.5) ? FateKind::kDropRequest
                                    : FateKind::kDropReply;
    return fate;
  }
  if (rule.corrupt > 0.0 && rng_.bernoulli(rule.corrupt)) {
    ++stats_.corrupted;
    fate.kind = rng_.bernoulli(0.5) ? FateKind::kCorruptRequest
                                    : FateKind::kCorruptReply;
    return fate;
  }
  if (rule.duplicate > 0.0 && rng_.bernoulli(rule.duplicate)) {
    ++stats_.duplicated;
    fate.kind = FateKind::kDuplicate;
    return fate;
  }
  ++stats_.delivered;
  if (fate.delay.count() > 0) ++stats_.delayed;
  return fate;
}

void FaultInjectingTransport::apply_delay(const Fate& fate) {
  if (fate.delay.count() > 0) {
    lockdep::check_blocking("sleep(fault-delay)");
    std::this_thread::sleep_for(fate.delay);
  }
}

Result<Message> FaultInjectingTransport::call(SiteId from, SiteId to,
                                              const Message& request) {
  const Fate fate = decide(from, to);
  switch (fate.kind) {
    case FateKind::kBlocked:
      return errors::unavailable("fault injection: link " +
                                 link_name(from, to) + " is partitioned");
    case FateKind::kDropRequest:
      apply_delay(fate);
      return errors::timeout("fault injection: request on " +
                             link_name(from, to) + " lost in transit");
    case FateKind::kDropReply: {
      apply_delay(fate);
      auto executed = inner_.call(from, to, request);
      executed.ignore_error();  // the peer ran it; the answer never came back
      return errors::timeout("fault injection: reply on " +
                             link_name(to, from) + " lost in transit");
    }
    case FateKind::kCorruptRequest:
      apply_delay(fate);
      return errors::corruption("fault injection: request frame on " +
                                link_name(from, to) +
                                " garbled (CRC trailer mismatch)");
    case FateKind::kCorruptReply: {
      apply_delay(fate);
      auto executed = inner_.call(from, to, request);
      executed.ignore_error();
      return errors::corruption("fault injection: reply frame on " +
                                link_name(to, from) +
                                " garbled (CRC trailer mismatch)");
    }
    case FateKind::kDuplicate: {
      apply_delay(fate);
      auto first = inner_.call(from, to, request);
      first.ignore_error();  // the duplicate's answer is redundant on the wire
      return inner_.call(from, to, request);
    }
    case FateKind::kDeliver:
      break;
  }
  apply_delay(fate);
  return inner_.call(from, to, request);
}

Status FaultInjectingTransport::send(SiteId from, SiteId to,
                                     const Message& message) {
  const Fate fate = decide(from, to);
  switch (fate.kind) {
    case FateKind::kBlocked:
    case FateKind::kDropRequest:
    case FateKind::kDropReply:
    case FateKind::kCorruptRequest:
    case FateKind::kCorruptReply:
      // One-way traffic that dies in transit (or arrives garbled and is
      // CRC-rejected) just vanishes — exactly the contract for sends to
      // fail-stop peers.
      return Status::ok();
    case FateKind::kDuplicate: {
      apply_delay(fate);
      inner_.send(from, to, message).ignore_error();
      return inner_.send(from, to, message);
    }
    case FateKind::kDeliver:
      break;
  }
  apply_delay(fate);
  return inner_.send(from, to, message);
}

Status FaultInjectingTransport::multicast(SiteId from, const SiteSet& to,
                                          const Message& message) {
  // Per-destination fates: survivors ride one inner multicast (preserving
  // the §5 accounting of a single logical transmission), duplicates get an
  // extra unicast, everything else is eaten silently.
  SiteSet survivors;
  std::vector<SiteId> duplicates;
  std::chrono::milliseconds max_delay{0};
  for (const SiteId dest : to) {
    if (dest == from) continue;
    const Fate fate = decide(from, dest);
    if (fate.delay > max_delay) max_delay = fate.delay;
    switch (fate.kind) {
      case FateKind::kDuplicate:
        duplicates.push_back(dest);
        [[fallthrough]];
      case FateKind::kDeliver:
        survivors.insert(dest);
        break;
      default:
        break;  // blocked / dropped / corrupted: not delivered
    }
  }
  if (max_delay.count() > 0) std::this_thread::sleep_for(max_delay);
  if (!survivors.empty()) inner_.multicast(from, survivors, message).ignore_error();
  for (const SiteId dest : duplicates) inner_.send(from, dest, message).ignore_error();
  return Status::ok();
}

std::vector<GatherReply> FaultInjectingTransport::multicast_call(
    SiteId from, const SiteSet& to, const Message& request,
    const EarlyStop& early_stop) {
  // Fates are drawn up front, per destination, in site order — so a fixed
  // seed replays the same schedule regardless of inner-transport timing.
  SiteSet survivors;
  std::vector<SiteId> executed_but_lost;  // peer runs it; reply never lands
  std::vector<SiteId> duplicates;
  std::chrono::milliseconds max_delay{0};
  for (const SiteId dest : to) {
    if (dest == from) continue;
    const Fate fate = decide(from, dest);
    if (fate.delay > max_delay) max_delay = fate.delay;
    switch (fate.kind) {
      case FateKind::kDeliver:
        survivors.insert(dest);
        break;
      case FateKind::kDuplicate:
        duplicates.push_back(dest);
        survivors.insert(dest);
        break;
      case FateKind::kDropReply:
      case FateKind::kCorruptReply:
        executed_but_lost.push_back(dest);
        break;
      case FateKind::kBlocked:
      case FateKind::kDropRequest:
      case FateKind::kCorruptRequest:
        break;  // the request never reaches the peer
    }
  }
  if (max_delay.count() > 0) std::this_thread::sleep_for(max_delay);
  // Peers whose reply dies still execute the request — the write is applied
  // even though the coordinator will not count the acknowledgement.
  for (const SiteId dest : executed_but_lost) {
    inner_.call(from, dest, request).ignore_error();
  }
  for (const SiteId dest : duplicates) {
    inner_.call(from, dest, request).ignore_error();
  }
  if (survivors.empty()) return {};
  return inner_.multicast_call(from, survivors, request, early_stop);
}

}  // namespace reldev::net
