#include "reldev/net/tcp/framing.hpp"

#include <algorithm>

#include "reldev/util/crc32.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::net::tcp {

namespace {
constexpr std::uint32_t kFrameMagic = 0x52444d47;  // "RDMG"
}  // namespace

std::array<std::byte, kFramePrefixSize> encode_frame_prefix(
    std::size_t payload_size) {
  BufferWriter writer(kFramePrefixSize);
  writer.put_u32(kFrameMagic);
  writer.put_u32(static_cast<std::uint32_t>(payload_size));
  std::array<std::byte, kFramePrefixSize> prefix{};
  std::copy(writer.bytes().begin(), writer.bytes().end(), prefix.begin());
  return prefix;
}

Result<std::uint32_t> parse_frame_prefix(std::span<const std::byte> prefix) {
  RELDEV_EXPECTS(prefix.size() == kFramePrefixSize);
  BufferReader reader(prefix);
  const std::uint32_t magic = reader.get_u32().value();
  const std::uint32_t length = reader.get_u32().value();
  if (magic != kFrameMagic) return errors::corruption("bad frame magic");
  if (length > kMaxFramePayload) return errors::protocol("oversized frame");
  return length;
}

std::uint32_t frame_crc(std::span<const std::byte> prefix,
                        std::span<const std::byte> payload) {
  // The trailer covers the prefix too, so a garbled length or magic that
  // happens to frame plausibly is still caught before decoding.
  return crc32c(payload, crc32c(prefix));
}

std::uint32_t decode_frame_trailer(std::span<const std::byte> trailer) {
  RELDEV_EXPECTS(trailer.size() == kFrameTrailerSize);
  return BufferReader(trailer).get_u32().value();
}

Status write_frame(Socket& socket, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    return errors::invalid_argument("frame payload too large");
  }
  const auto prefix = encode_frame_prefix(payload.size());
  BufferWriter writer(kFramePrefixSize + payload.size() + kFrameTrailerSize);
  writer.put_raw(prefix);
  writer.put_raw(payload);
  writer.put_u32(frame_crc(prefix, payload));
  return socket.write_all(writer.bytes());
}

Result<std::vector<std::byte>> read_frame(Socket& socket) {
  std::array<std::byte, kFramePrefixSize> prefix;
  if (auto status = socket.read_exact(prefix); !status.is_ok()) return status;
  auto length = parse_frame_prefix(prefix);
  if (!length) return length.status();
  std::vector<std::byte> rest(length.value() + kFrameTrailerSize);
  if (auto status = socket.read_exact(rest); !status.is_ok()) {
    // Losing the stream mid-frame is an I/O error even if read_exact saw a
    // clean EOF at byte 0 of the payload.
    if (status.code() == ErrorCode::kUnavailable) {
      return errors::io_error("connection closed mid-frame");
    }
    return status;
  }
  const std::span<const std::byte> payload(rest.data(), length.value());
  const std::uint32_t crc = decode_frame_trailer(
      std::span<const std::byte>(rest.data() + length.value(),
                                 kFrameTrailerSize));
  if (frame_crc(prefix, payload) != crc) {
    return errors::corruption("frame CRC mismatch");
  }
  rest.resize(length.value());  // drop the trailer; no payload copy
  return rest;
}

}  // namespace reldev::net::tcp
