#include "reldev/net/tcp/framing.hpp"

#include "reldev/util/crc32.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::net::tcp {

namespace {
constexpr std::uint32_t kFrameMagic = 0x52444d47;  // "RDMG"
constexpr std::size_t kFramePrefixSize = 8;   // magic + length
constexpr std::size_t kFrameTrailerSize = 4;  // CRC-32C over prefix+payload
}  // namespace

Status write_frame(Socket& socket, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    return errors::invalid_argument("frame payload too large");
  }
  BufferWriter writer(kFramePrefixSize + payload.size() + kFrameTrailerSize);
  writer.put_u32(kFrameMagic);
  writer.put_u32(static_cast<std::uint32_t>(payload.size()));
  writer.put_raw(payload);
  // The trailer covers the prefix too, so a garbled length or magic that
  // happens to frame plausibly is still caught before decoding.
  writer.put_u32(crc32c(writer.bytes()));
  return socket.write_all(writer.bytes());
}

Result<std::vector<std::byte>> read_frame(Socket& socket) {
  std::vector<std::byte> prefix(kFramePrefixSize);
  if (auto status = socket.read_exact(prefix); !status.is_ok()) return status;
  BufferReader reader(prefix);
  const std::uint32_t magic = reader.get_u32().value();
  const std::uint32_t length = reader.get_u32().value();
  if (magic != kFrameMagic) return errors::corruption("bad frame magic");
  if (length > kMaxFramePayload) return errors::protocol("oversized frame");
  std::vector<std::byte> rest(length + kFrameTrailerSize);
  if (auto status = socket.read_exact(rest); !status.is_ok()) {
    // Losing the stream mid-frame is an I/O error even if read_exact saw a
    // clean EOF at byte 0 of the payload.
    if (status.code() == ErrorCode::kUnavailable) {
      return errors::io_error("connection closed mid-frame");
    }
    return status;
  }
  const std::span<const std::byte> payload(rest.data(), length);
  BufferReader trailer(
      std::span<const std::byte>(rest.data() + length, kFrameTrailerSize));
  const std::uint32_t crc = trailer.get_u32().value();
  if (crc32c(payload, crc32c(prefix)) != crc) {
    return errors::corruption("frame CRC mismatch");
  }
  return std::vector<std::byte>(payload.begin(), payload.end());
}

}  // namespace reldev::net::tcp
