#include "reldev/net/tcp/framing.hpp"

#include "reldev/util/crc32.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::net::tcp {

namespace {
constexpr std::uint32_t kFrameMagic = 0x52444d47;  // "RDMG"
constexpr std::size_t kFrameHeaderSize = 12;
}  // namespace

Status write_frame(Socket& socket, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    return errors::invalid_argument("frame payload too large");
  }
  BufferWriter writer(kFrameHeaderSize + payload.size());
  writer.put_u32(kFrameMagic);
  writer.put_u32(static_cast<std::uint32_t>(payload.size()));
  writer.put_u32(crc32c(payload));
  writer.put_raw(payload);
  return socket.write_all(writer.bytes());
}

Result<std::vector<std::byte>> read_frame(Socket& socket) {
  std::vector<std::byte> header(kFrameHeaderSize);
  if (auto status = socket.read_exact(header); !status.is_ok()) return status;
  BufferReader reader(header);
  const std::uint32_t magic = reader.get_u32().value();
  const std::uint32_t length = reader.get_u32().value();
  const std::uint32_t crc = reader.get_u32().value();
  if (magic != kFrameMagic) return errors::corruption("bad frame magic");
  if (length > kMaxFramePayload) return errors::protocol("oversized frame");
  std::vector<std::byte> payload(length);
  if (auto status = socket.read_exact(payload); !status.is_ok()) {
    // Losing the stream mid-frame is an I/O error even if read_exact saw a
    // clean EOF at byte 0 of the payload.
    if (status.code() == ErrorCode::kUnavailable && length > 0) {
      return errors::io_error("connection closed mid-frame");
    }
    return status;
  }
  if (crc32c(std::span<const std::byte>(payload)) != crc) {
    return errors::corruption("frame CRC mismatch");
  }
  return payload;
}

}  // namespace reldev::net::tcp
