#include "reldev/net/tcp/tcp_server.hpp"

#include <utility>

#include "reldev/util/logging.hpp"

namespace reldev::net::tcp {

Result<std::unique_ptr<TcpServer>> TcpServer::start(std::uint16_t port,
                                                    MessageHandler* handler) {
  RELDEV_EXPECTS(handler != nullptr);
  auto acceptor = Acceptor::listen(port);
  if (!acceptor) return acceptor.status();
  return std::unique_ptr<TcpServer>(
      new TcpServer(std::move(acceptor).value(), handler));
}

TcpServer::TcpServer(Acceptor acceptor, MessageHandler* handler)
    : acceptor_(std::move(acceptor)), handler_(handler) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopping_.exchange(true)) return;
  // shutdown() wakes the accept loop without racing its fd reads; the
  // descriptor is only closed once the thread has been joined.
  acceptor_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  acceptor_.close();
  std::map<std::uint64_t, std::thread> workers;
  {
    const MutexLock lock(mutex_);
    // Wake every worker blocked in recv() on a live connection.
    for (const auto& [id, connection] : connections_) connection->shutdown();
    workers.swap(workers_);
    finished_.clear();
  }
  for (auto& [id, worker] : workers) {
    if (worker.joinable()) worker.join();
  }
  const MutexLock lock(mutex_);
  connections_.clear();
}

void TcpServer::reap_finished() {
  std::vector<std::thread> done;
  {
    const MutexLock lock(mutex_);
    done.reserve(finished_.size());
    for (const std::uint64_t id : finished_) {
      auto it = workers_.find(id);
      if (it == workers_.end()) continue;  // stop() already took it
      done.push_back(std::move(it->second));
      workers_.erase(it);
    }
    finished_.clear();
  }
  for (auto& worker : done) {
    if (worker.joinable()) worker.join();
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load()) {
    auto socket = acceptor_.accept();
    reap_finished();
    if (!socket) {
      if (stopping_.load()) break;
      RELDEV_WARN("tcp-server") << "accept failed: "
                                << socket.status().to_string();
      break;
    }
    auto connection = std::make_shared<Socket>(std::move(socket).value());
    const MutexLock lock(mutex_);
    if (stopping_.load()) break;
    const std::uint64_t id = next_worker_id_++;
    connections_.emplace(id, connection);
    workers_.emplace(id, std::thread([this, id, connection] {
                       serve_connection(connection);
                       const MutexLock done_lock(mutex_);
                       connections_.erase(id);
                       finished_.push_back(id);
                     }));
  }
}

void TcpServer::serve_connection(const std::shared_ptr<Socket>& socket_ptr) {
  Socket& socket = *socket_ptr;
  while (!stopping_.load()) {
    auto frame = read_frame(socket);
    if (!frame) {
      // A frame that fails its CRC trailer is rejected before any decode
      // runs; the stream position is untrustworthy afterwards, so the
      // connection is torn down. Counted so injected corruption is visible.
      if (frame.status().code() == ErrorCode::kCorruption) {
        corrupted_frames_.fetch_add(1);
        RELDEV_WARN("tcp-server")
            << "corrupt frame rejected: " << frame.status().to_string();
      } else if (frame.status().code() == ErrorCode::kProtocol) {
        rejected_frames_.fetch_add(1);
        RELDEV_WARN("tcp-server")
            << "frame rejected: " << frame.status().to_string();
      } else if (frame.status().code() != ErrorCode::kUnavailable) {
        RELDEV_DEBUG("tcp-server")
            << "connection error: " << frame.status().to_string();
      }
      return;  // peer is gone or stream is corrupt; drop the connection
    }
    served_frames_.fetch_add(1);
    auto request = Message::decode(frame.value());
    Message reply = request ? handler_->handle(request.value())
                            : make_error(0, request.status());
    const auto encoded = reply.encode();
    if (auto status = write_frame(socket, encoded); !status.is_ok()) {
      RELDEV_DEBUG("tcp-server") << "reply failed: " << status.to_string();
      return;
    }
  }
}

}  // namespace reldev::net::tcp
