#include "reldev/net/tcp/tcp_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <deque>
#include <future>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "reldev/util/buffer_arena.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::net::tcp {

class TcpServer::Impl {
 public:
  virtual ~Impl() = default;
  [[nodiscard]] virtual std::uint16_t port() const noexcept = 0;
  [[nodiscard]] virtual ServerOptions::Mode mode() const noexcept = 0;
  [[nodiscard]] virtual EventLoop::Backend backend() const noexcept = 0;
  virtual void stop() = 0;
};

namespace {

/// Classify a failed read_frame / frame validation into the server's
/// counters. Returns true when the failure deserves a warning (corruption
/// or protocol violation) rather than being normal connection churn.
bool count_bad_frame(const Status& status, ServerCounters& counters) {
  if (status.code() == ErrorCode::kCorruption) {
    counters.corrupted_frames.fetch_add(1);
    RELDEV_WARN("tcp-server") << "corrupt frame rejected: "
                              << status.to_string();
    return true;
  }
  if (status.code() == ErrorCode::kProtocol) {
    counters.rejected_frames.fetch_add(1);
    RELDEV_WARN("tcp-server") << "frame rejected: " << status.to_string();
    return true;
  }
  if (status.code() != ErrorCode::kUnavailable) {
    RELDEV_DEBUG("tcp-server") << "connection error: " << status.to_string();
  }
  return false;
}

// --------------------------------------------------------------------------
// Thread-per-connection baseline (the original server).
// --------------------------------------------------------------------------

class ThreadedImpl final : public TcpServer::Impl {
 public:
  ThreadedImpl(Acceptor acceptor, MessageHandler* handler,
               ServerCounters* counters)
      : acceptor_(std::move(acceptor)), handler_(handler),
        counters_(counters) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~ThreadedImpl() override { stop(); }

  [[nodiscard]] std::uint16_t port() const noexcept override {
    return port_;
  }
  [[nodiscard]] ServerOptions::Mode mode() const noexcept override {
    return ServerOptions::Mode::kThreadPerConnection;
  }
  [[nodiscard]] EventLoop::Backend backend() const noexcept override {
    return EventLoop::Backend::kEpoll;
  }

  void stop() override RELDEV_EXCLUDES(mutex_) {
    if (stopping_.exchange(true)) return;
    // shutdown() wakes the accept loop without racing its fd reads; the
    // descriptor is only closed once the thread has been joined.
    acceptor_.shutdown();
    if (accept_thread_.joinable()) accept_thread_.join();
    acceptor_.close();
    std::map<std::uint64_t, std::thread> workers;
    {
      const MutexLock lock(mutex_);
      // Wake every worker blocked in recv() on a live connection.
      for (const auto& [id, connection] : connections_) {
        connection->shutdown();
      }
      workers.swap(workers_);
      finished_.clear();
    }
    for (auto& [id, worker] : workers) {
      if (worker.joinable()) worker.join();
    }
    const MutexLock lock(mutex_);
    connections_.clear();
  }

 private:
  /// Join workers whose connections have closed. A worker cannot join
  /// itself, so it parks its id in `finished_` and the accept thread (or
  /// stop()) joins it — keeping the worker map bounded by the number of
  /// *live* connections instead of growing for the server's lifetime.
  void reap_finished() RELDEV_EXCLUDES(mutex_) {
    std::vector<std::thread> done;
    {
      const MutexLock lock(mutex_);
      done.reserve(finished_.size());
      for (const std::uint64_t id : finished_) {
        auto it = workers_.find(id);
        if (it == workers_.end()) continue;  // stop() already took it
        done.push_back(std::move(it->second));
        workers_.erase(it);
      }
      finished_.clear();
    }
    for (auto& worker : done) {
      if (worker.joinable()) worker.join();
    }
  }

  void accept_loop() RELDEV_EXCLUDES(mutex_) {
    while (!stopping_.load()) {
      auto socket = acceptor_.accept();
      reap_finished();
      if (!socket) {
        if (stopping_.load()) break;
        RELDEV_WARN("tcp-server")
            << "accept failed: " << socket.status().to_string();
        break;
      }
      auto connection = std::make_shared<Socket>(std::move(socket).value());
      const MutexLock lock(mutex_);
      if (stopping_.load()) break;
      const std::uint64_t id = next_worker_id_++;
      connections_.emplace(id, connection);
      counters_->active_connections.fetch_add(1);
      workers_.emplace(id, std::thread([this, id, connection] {
                         serve_connection(*connection);
                         counters_->active_connections.fetch_sub(1);
                         const MutexLock done_lock(mutex_);
                         connections_.erase(id);
                         finished_.push_back(id);
                       }));
    }
  }

  void serve_connection(Socket& socket) {
    while (!stopping_.load()) {
      auto frame = read_frame(socket);
      if (!frame) {
        count_bad_frame(frame.status(), *counters_);
        return;  // peer is gone or stream is corrupt; drop the connection
      }
      counters_->served_frames.fetch_add(1);
      auto request = Message::decode(frame.value());
      Message reply = request ? handler_->handle(request.value())
                              : make_error(0, request.status());
      const auto encoded = reply.encode();
      if (auto status = write_frame(socket, encoded); !status.is_ok()) {
        RELDEV_DEBUG("tcp-server") << "reply failed: " << status.to_string();
        return;
      }
    }
  }

  Acceptor acceptor_;
  const std::uint16_t port_ = acceptor_.port();
  MessageHandler* handler_;
  ServerCounters* counters_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  Mutex mutex_{"TcpServer.ThreadedImpl.mutex"};
  std::uint64_t next_worker_id_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::map<std::uint64_t, std::thread> workers_ RELDEV_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> finished_ RELDEV_GUARDED_BY(mutex_);
  // Live connection sockets, shut down by stop() so workers blocked in
  // recv() wake up and exit.
  std::map<std::uint64_t, std::shared_ptr<Socket>> connections_
      RELDEV_GUARDED_BY(mutex_);
};

// --------------------------------------------------------------------------
// Reactor mode: sharded event loops + a handler worker pool.
// --------------------------------------------------------------------------

/// Fixed pool executing MessageHandler calls so a slow handler stalls one
/// worker, not an event loop. stop() drains queued jobs before joining.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads) {
    for (std::size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  ~WorkerPool() { stop(); }

  void submit(std::function<void()> job) RELDEV_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      if (stopping_) return;  // dropped; the server is shutting down
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  void stop() RELDEV_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
  }

 private:
  void worker() RELDEV_EXCLUDES(mutex_) {
    for (;;) {
      std::function<void()> job;
      {
        const MutexLock lock(mutex_);
        while (queue_.empty() && !stopping_) cv_.wait(mutex_);
        if (queue_.empty()) return;  // stopping and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  Mutex mutex_{"TcpServer.WorkerPool.mutex"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ RELDEV_GUARDED_BY(mutex_);
  bool stopping_ RELDEV_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

class ReactorImpl final : public TcpServer::Impl {
 public:
  ReactorImpl(Acceptor acceptor, MessageHandler* handler,
              ServerCounters* counters, const ServerOptions& options,
              std::vector<std::unique_ptr<EventLoop>> loops)
      : acceptor_(std::move(acceptor)), handler_(handler),
        counters_(counters), options_(options),
        backend_(loops.front()->backend()),
        pool_(options.inline_handlers
                  ? 0
                  : (options.handler_threads != 0
                         ? options.handler_threads
                         : std::max<std::size_t>(
                               8, std::thread::hardware_concurrency()))) {
    shards_.reserve(loops.size());
    for (auto& loop : loops) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->loop = std::move(loop);
    }
    for (auto& shard : shards_) {
      shard->thread = std::thread([&shard] { shard->loop->run(); });
    }
    run_on_shard(0, [this] { arm_accept(); });
  }

  ~ReactorImpl() override { stop(); }

  [[nodiscard]] std::uint16_t port() const noexcept override {
    return port_;
  }
  [[nodiscard]] ServerOptions::Mode mode() const noexcept override {
    return ServerOptions::Mode::kReactor;
  }
  [[nodiscard]] EventLoop::Backend backend() const noexcept override {
    return backend_;
  }

  void stop() override {
    if (stopping_.exchange(true)) return;
    // 1. Stop accepting: drop the pending accept op, close the listener.
    run_on_shard(0, [this] { shards_[0]->loop->cancel(acceptor_.fd()); });
    acceptor_.close();
    // 2. Close every connection — including ones mid-request — on its own
    //    shard. In-flight handler results find conn->closed and are dropped.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      run_on_shard(i, [this, i] {
        auto conns = std::move(shards_[i]->conns);
        for (auto& [fd, conn] : conns) conn->close();
      });
    }
    // 3. Drain the handler pool. Completions posted to the still-running
    //    loops see closed connections and do nothing.
    pool_.stop();
    // 4. Now the loops can go.
    for (auto& shard : shards_) {
      shard->loop->stop();
      if (shard->thread.joinable()) shard->thread.join();
    }
  }

 private:
  struct Conn;

  /// One event loop plus its thread and the connections it owns. `conns`
  /// is touched only from the shard's loop thread (registration happens in
  /// posted tasks), so it needs no lock.
  struct Shard {
    std::unique_ptr<EventLoop> loop;
    std::thread thread;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
  };

  /// Per-connection frame state machine. Owned by exactly one shard and
  /// mutated only on that shard's loop thread; the worker pool touches a
  /// Conn only to post completions back to its loop. Strict cycle per
  /// connection — read frame, dispatch, write reply, read again — so
  /// replies keep request order without sequence numbers.
  struct Conn : std::enable_shared_from_this<Conn> {
    ReactorImpl* server = nullptr;
    Shard* shard = nullptr;
    int fd = -1;
    bool closed = false;
    // Read state: the fixed prefix lands in `prefix`; payload + CRC
    // trailer land in one arena buffer that travels to the worker, so
    // payload bytes are written exactly once between recv() and decode.
    std::array<std::byte, kFramePrefixSize> prefix{};
    bool reading_body = false;
    std::uint32_t body_len = 0;
    util::ArenaBuffer body;
    std::size_t read_off = 0;
    // Write state: prefix / payload / trailer go out as one gather write,
    // never concatenated into a single buffer.
    std::array<std::byte, kFramePrefixSize> write_prefix{};
    std::vector<std::byte> write_payload;
    std::array<std::byte, kFrameTrailerSize> write_trailer{};
    std::size_t write_off = 0;
    // Bumped on every completed read/write; the idle reaper closes the
    // connection when a full idle_timeout passes without a bump.
    std::uint64_t activity = 0;

    void close() {
      if (closed) return;
      closed = true;
      shard->loop->cancel(fd);
      ::close(fd);
      server->counters_->active_connections.fetch_sub(1);
      shard->conns.erase(fd);  // may already be gone during stop()
    }

    void arm_read() {
      auto self = shared_from_this();
      iovec iov{};
      if (!reading_body) {
        iov = {prefix.data() + read_off, kFramePrefixSize - read_off};
      } else {
        iov = {body.data() + read_off,
               body_len + kFrameTrailerSize - read_off};
      }
      shard->loop->async_readv(
          fd, std::span<const iovec>(&iov, 1),
          [self](Result<std::size_t> n) { self->on_read(std::move(n)); });
    }

    void on_read(Result<std::size_t> n) {
      if (!n.is_ok()) {
        RELDEV_DEBUG("tcp-server")
            << "connection error: " << n.status().to_string();
        close();
        return;
      }
      if (n.value() == 0) {  // EOF
        if (reading_body || read_off != 0) {
          RELDEV_DEBUG("tcp-server") << "connection closed mid-frame";
        }
        close();
        return;
      }
      read_off += n.value();
      ++activity;
      if (!reading_body) {
        if (read_off < kFramePrefixSize) {
          arm_read();
          return;
        }
        const auto length = parse_frame_prefix(prefix);
        if (!length) {
          count_bad_frame(length.status(), *server->counters_);
          close();
          return;
        }
        body_len = length.value();
        body = util::BufferArena::shared().acquire(body_len + kFrameTrailerSize);
        reading_body = true;
        read_off = 0;
        arm_read();
        return;
      }
      if (read_off < body_len + kFrameTrailerSize) {
        arm_read();
        return;
      }
      finish_frame();
    }

    void finish_frame() {
      const std::span<const std::byte> payload(body.data(), body_len);
      const std::uint32_t crc = decode_frame_trailer(std::span<const std::byte>(
          body.data() + body_len, kFrameTrailerSize));
      if (frame_crc(prefix, payload) != crc) {
        count_bad_frame(errors::corruption("frame CRC mismatch"),
                        *server->counters_);
        close();
        return;
      }
      server->counters_->served_frames.fetch_add(1);
      const std::uint32_t length = body_len;
      reading_body = false;
      read_off = 0;
      if (server->options_.inline_handlers) {
        // Non-blocking handlers run right here on the loop shard: no pool
        // hop, no cross-thread wakeup per request.
        const util::ArenaBuffer request = std::move(body);
        start_write(run_handler(server->handler_, request, length));
        return;
      }
      // Hand the payload — still in the arena buffer, zero copies since
      // recv — to the worker pool; the reply comes back via the loop.
      auto self = shared_from_this();
      // std::function requires copyable targets; the move-only arena
      // buffer rides in a shared_ptr.
      auto frame = std::make_shared<util::ArenaBuffer>(std::move(body));
      server->pool_.submit([self, frame, length] {
        std::vector<std::byte> encoded =
            run_handler(self->server->handler_, *frame, length);
        EventLoop* loop = self->shard->loop.get();
        loop->post([self, encoded = std::move(encoded)]() mutable {
          if (self->closed) return;  // connection died while we worked
          self->start_write(std::move(encoded));
        });
      });
    }

    /// Decode, dispatch, encode: the per-request work that runs on a pool
    /// worker (default) or inline on the loop shard (inline_handlers).
    static std::vector<std::byte> run_handler(MessageHandler* handler,
                                              const util::ArenaBuffer& frame,
                                              std::uint32_t length) {
      const std::span<const std::byte> request_bytes(frame.data(), length);
      auto request = Message::decode(request_bytes);
      Message reply = request ? handler->handle(request.value())
                              : make_error(0, request.status());
      return reply.encode();
    }

    void start_write(std::vector<std::byte> payload) {
      if (payload.size() > kMaxFramePayload) {
        RELDEV_WARN("tcp-server") << "reply too large; dropping connection";
        close();
        return;
      }
      write_prefix = encode_frame_prefix(payload.size());
      write_payload = std::move(payload);
      const std::uint32_t crc = frame_crc(write_prefix, write_payload);
      BufferWriter trailer(kFrameTrailerSize);
      trailer.put_u32(crc);
      std::copy(trailer.bytes().begin(), trailer.bytes().end(),
                write_trailer.begin());
      write_off = 0;
      arm_write();
    }

    void arm_write() {
      // Gather the un-sent suffix of prefix|payload|trailer into at most
      // three iovecs; the payload is never copied into a frame buffer.
      std::array<iovec, 3> iov{};
      std::size_t count = 0;
      std::size_t skip = write_off;
      const auto add = [&](const std::byte* data, std::size_t size) {
        if (size <= skip) {
          skip -= size;
          return;
        }
        iov[count++] = {const_cast<std::byte*>(data + skip), size - skip};
        skip = 0;
      };
      add(write_prefix.data(), write_prefix.size());
      add(write_payload.data(), write_payload.size());
      add(write_trailer.data(), write_trailer.size());
      auto self = shared_from_this();
      shard->loop->async_writev(
          fd, std::span<const iovec>(iov.data(), count),
          [self](Result<std::size_t> n) { self->on_write(std::move(n)); });
    }

    void on_write(Result<std::size_t> n) {
      if (!n.is_ok()) {
        RELDEV_DEBUG("tcp-server")
            << "reply failed: " << n.status().to_string();
        close();
        return;
      }
      write_off += n.value();
      ++activity;
      const std::size_t total = write_prefix.size() + write_payload.size() +
                                write_trailer.size();
      if (write_off < total) {
        arm_write();
        return;
      }
      write_payload.clear();
      write_payload.shrink_to_fit();
      arm_read();  // next request
    }

    void arm_idle_timer() {
      auto self = shared_from_this();
      const std::uint64_t seen = activity;
      shard->loop->add_timer(self->server->options_.idle_timeout,
                             [self, seen] {
                               if (self->closed) return;
                               if (self->activity == seen) {
                                 self->close();
                                 return;
                               }
                               self->arm_idle_timer();
                             });
    }
  };

  /// Run `task` on shard `index`'s loop thread and wait for it.
  void run_on_shard(std::size_t index, EventLoop::Task task) {
    std::promise<void> done;
    auto fut = done.get_future();
    shards_[index]->loop->post([&task, &done] {
      task();
      done.set_value();
    });
    fut.wait();
  }

  void arm_accept() {
    shards_[0]->loop->async_accept(
        acceptor_.fd(), [this](Result<int> accepted) {
          if (!accepted.is_ok()) {
            if (!stopping_.load()) {
              RELDEV_WARN("tcp-server")
                  << "accept failed: " << accepted.status().to_string();
            }
            return;  // accept chain ends; stop() owns teardown
          }
          adopt(accepted.value());
          arm_accept();
        });
  }

  /// Assign a freshly-accepted fd to a shard round-robin and start its
  /// frame state machine there.
  void adopt(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::size_t index =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    counters_->active_connections.fetch_add(1);
    Shard* shard = shards_[index].get();
    shard->loop->post([this, shard, fd] {
      auto conn = std::make_shared<Conn>();
      conn->server = this;
      conn->shard = shard;
      conn->fd = fd;
      shard->conns.emplace(fd, conn);
      if (options_.idle_timeout.count() > 0) conn->arm_idle_timer();
      conn->arm_read();
    });
  }

  Acceptor acceptor_;
  const std::uint16_t port_ = acceptor_.port();
  MessageHandler* handler_;
  ServerCounters* counters_;
  const ServerOptions options_;
  const EventLoop::Backend backend_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_shard_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  WorkerPool pool_;
};

}  // namespace

Result<std::unique_ptr<TcpServer>> TcpServer::start(
    std::uint16_t port, MessageHandler* handler,
    const ServerOptions& options) {
  RELDEV_EXPECTS(handler != nullptr);
  auto acceptor = Acceptor::listen(port);
  if (!acceptor) return acceptor.status();
  auto server = std::unique_ptr<TcpServer>(new TcpServer());
  if (options.mode == ServerOptions::Mode::kThreadPerConnection) {
    server->impl_ = std::make_unique<ThreadedImpl>(
        std::move(acceptor).value(), handler, &server->counters_);
    return server;
  }
  if (auto status = acceptor.value().set_nonblocking(true); !status.is_ok()) {
    return status;
  }
  const std::size_t shard_count =
      options.loop_shards != 0
          ? options.loop_shards
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::unique_ptr<EventLoop>> loops;
  loops.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto loop = EventLoop::create(options.backend);
    if (!loop) return loop.status();
    loops.push_back(std::move(loop).value());
  }
  server->impl_ = std::make_unique<ReactorImpl>(std::move(acceptor).value(),
                                                handler, &server->counters_,
                                                options, std::move(loops));
  return server;
}

TcpServer::~TcpServer() {
  if (impl_ != nullptr) impl_->stop();
}

std::uint16_t TcpServer::port() const noexcept { return impl_->port(); }

ServerOptions::Mode TcpServer::mode() const noexcept { return impl_->mode(); }

EventLoop::Backend TcpServer::backend() const noexcept {
  return impl_->backend();
}

void TcpServer::stop() { impl_->stop(); }

}  // namespace reldev::net::tcp
