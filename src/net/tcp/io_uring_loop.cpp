// io_uring backend for EventLoop, written against the raw kernel ABI
// (io_uring_setup / io_uring_enter / mmap'ed rings) — no liburing
// dependency. Compiled in when RELDEV_IO_URING=ON and the kernel headers
// are new enough; selected at runtime only when the running kernel
// advertises IORING_FEAT_FAST_POLL (readiness handled in-kernel, no
// EAGAIN bouncing) and IORING_FEAT_EXT_ARG (timed waits without a timeout
// SQE). Anything less falls back to epoll.
//
// Submission is batched: operations armed during a callback round are
// staged in a queue and flushed as one block of SQEs with a single
// io_uring_enter per loop iteration — under load, one syscall carries an
// entire shard's worth of reads, writes and accepts.
#include "event_loop_internal.hpp"

#if defined(RELDEV_IO_URING) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/syscall.h>
#if defined(IORING_ENTER_EXT_ARG) && defined(IORING_FEAT_FAST_POLL) && \
    defined(__NR_io_uring_setup)
#define RELDEV_IO_URING_USABLE 1
#endif
#endif

#if defined(RELDEV_IO_URING_USABLE)

#include <linux/time_types.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "reldev/util/logging.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::net::tcp::detail {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

constexpr std::uint32_t kRequiredFeatures =
    IORING_FEAT_FAST_POLL | IORING_FEAT_EXT_ARG;

/// The mmap'ed ring views. Pointer arithmetic mirrors liburing's
/// io_uring_queue_mmap; offsets come from io_uring_params.
struct Ring {
  int fd = -1;
  // Submission side.
  unsigned* sq_head = nullptr;  // kernel-written consumer index
  unsigned* sq_tail = nullptr;  // our producer index
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;
  // Completion side.
  unsigned* cq_head = nullptr;  // our consumer index
  unsigned* cq_tail = nullptr;  // kernel-written producer index
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  // Mappings, for teardown.
  void* sq_ring_ptr = MAP_FAILED;
  std::size_t sq_ring_bytes = 0;
  void* cq_ring_ptr = MAP_FAILED;  // == sq_ring_ptr under FEAT_SINGLE_MMAP
  std::size_t cq_ring_bytes = 0;
  void* sqe_ptr = MAP_FAILED;
  std::size_t sqe_bytes = 0;
};

void unmap_ring(Ring& ring) {
  if (ring.sqe_ptr != MAP_FAILED) ::munmap(ring.sqe_ptr, ring.sqe_bytes);
  if (ring.cq_ring_ptr != MAP_FAILED && ring.cq_ring_ptr != ring.sq_ring_ptr) {
    ::munmap(ring.cq_ring_ptr, ring.cq_ring_bytes);
  }
  if (ring.sq_ring_ptr != MAP_FAILED) {
    ::munmap(ring.sq_ring_ptr, ring.sq_ring_bytes);
  }
  if (ring.fd >= 0) ::close(ring.fd);
  ring = Ring{};
}

bool map_ring(unsigned entries, Ring& ring) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  ring.fd = sys_io_uring_setup(entries, &params);
  if (ring.fd < 0) return false;
  if ((params.features & kRequiredFeatures) != kRequiredFeatures) {
    unmap_ring(ring);
    return false;
  }
  ring.sq_ring_bytes =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  ring.cq_ring_bytes =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    ring.sq_ring_bytes = std::max(ring.sq_ring_bytes, ring.cq_ring_bytes);
    ring.cq_ring_bytes = ring.sq_ring_bytes;
  }
  ring.sq_ring_ptr =
      ::mmap(nullptr, ring.sq_ring_bytes, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring.fd, IORING_OFF_SQ_RING);
  if (ring.sq_ring_ptr == MAP_FAILED) {
    unmap_ring(ring);
    return false;
  }
  ring.cq_ring_ptr =
      single_mmap ? ring.sq_ring_ptr
                  : ::mmap(nullptr, ring.cq_ring_bytes,
                           PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                           ring.fd, IORING_OFF_CQ_RING);
  if (ring.cq_ring_ptr == MAP_FAILED) {
    unmap_ring(ring);
    return false;
  }
  ring.sqe_bytes = params.sq_entries * sizeof(io_uring_sqe);
  ring.sqe_ptr = ::mmap(nullptr, ring.sqe_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring.fd, IORING_OFF_SQES);
  if (ring.sqe_ptr == MAP_FAILED) {
    unmap_ring(ring);
    return false;
  }
  auto* sq_base = static_cast<std::byte*>(ring.sq_ring_ptr);
  ring.sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  ring.sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  ring.sq_mask =
      *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  ring.sq_entries = params.sq_entries;
  ring.sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  ring.sqes = static_cast<io_uring_sqe*>(ring.sqe_ptr);
  auto* cq_base = static_cast<std::byte*>(ring.cq_ring_ptr);
  ring.cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  ring.cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  ring.cq_mask =
      *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  ring.cqes = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
  return true;
}

// Reserved user_data values. Real operations get ids from a monotonic
// counter starting at 1, so stale CQEs can never be confused with a
// recycled operation (the id space is never reused).
constexpr std::uint64_t kWakeData = 0;
constexpr std::uint64_t kDiscardData = ~std::uint64_t{0};

class UringLoop final : public EventLoop {
 public:
  static std::unique_ptr<EventLoop> make() {
    Ring ring;
    if (!map_ring(/*entries=*/256, ring)) return nullptr;
    const int event_fd = ::eventfd(0, EFD_NONBLOCK);
    if (event_fd < 0) {
      unmap_ring(ring);
      return nullptr;
    }
    return std::unique_ptr<EventLoop>(new UringLoop(ring, event_fd));
  }

  ~UringLoop() override {
    ::close(event_fd_);
    unmap_ring(ring_);
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kIoUring;
  }

  void run() override {
    arm_wake();
    while (!stopping_.load(std::memory_order_acquire)) {
      drain_posted();
      for (auto& task : timers_.take_due()) task();
      if (stopping_.load(std::memory_order_acquire)) break;

      const unsigned staged = stage_submissions();
      // If the SQ ring could not hold everything, don't block: reap, free
      // ring space, and come back for the remainder.
      const unsigned min_complete = submit_queue_.empty() ? 1 : 0;
      unsigned flags = IORING_ENTER_GETEVENTS;
      io_uring_getevents_arg arg;
      std::memset(&arg, 0, sizeof(arg));
      __kernel_timespec ts{};
      const void* argp = nullptr;
      std::size_t argsz = 0;
      const auto timeout = timers_.next_timeout_ms();
      if (timeout.has_value() && min_complete > 0) {
        ts.tv_sec = *timeout / 1000;
        ts.tv_nsec = static_cast<long long>(*timeout % 1000) * 1000000;
        arg.ts = reinterpret_cast<std::uint64_t>(&ts);
        argp = &arg;
        argsz = sizeof(arg);
        flags |= IORING_ENTER_EXT_ARG;
      }
      const int rc = sys_io_uring_enter(ring_.fd, staged, min_complete, flags,
                                        argp, argsz);
      if (rc < 0 && errno != EINTR && errno != ETIME && errno != EBUSY) {
        RELDEV_WARN("event-loop")
            << "io_uring_enter: " << std::strerror(errno);
        break;
      }
      reap_completions();
    }
  }

  void stop() override {
    stopping_.store(true, std::memory_order_release);
    wake();
  }

  void post(Task task) override {
    {
      const MutexLock lock(mutex_);
      if (stopping_.load(std::memory_order_acquire)) return;  // dropped
      posted_.push_back(std::move(task));
    }
    wake();
  }

  void async_accept(int listen_fd, AcceptHandler on_accept) override {
    auto op = std::make_unique<PendingOp>();
    op->kind = PendingOp::Kind::kAccept;
    op->fd = listen_fd;
    op->accept_handler = std::move(on_accept);
    arm(std::move(op));
  }

  void async_readv(int fd, std::span<const iovec> iov,
                   IoHandler on_done) override {
    arm(make_io_op(PendingOp::Kind::kRead, fd, iov, std::move(on_done)));
  }

  void async_writev(int fd, std::span<const iovec> iov,
                    IoHandler on_done) override {
    arm(make_io_op(PendingOp::Kind::kWrite, fd, iov, std::move(on_done)));
  }

  void cancel(int fd) override {
    auto it = fd_index_.find(fd);
    if (it == fd_index_.end()) return;
    for (const std::uint64_t id : {it->second.read_id, it->second.write_id}) {
      if (id == 0) continue;
      auto op = ops_.find(id);
      if (op == ops_.end()) continue;
      // The kernel may already own this SQE; mark the op so its CQE is
      // discarded whenever it lands, and ask the kernel to hurry it along.
      op->second->cancelled = true;
      submit_queue_.push_back(Submission{Submission::Type::kCancel, id});
    }
    fd_index_.erase(it);
  }

  TimerId add_timer(std::chrono::milliseconds delay, Task task) override {
    return timers_.add(delay, std::move(task));
  }

  void cancel_timer(TimerId id) override { timers_.cancel(id); }

 private:
  struct Submission {
    enum class Type : std::uint8_t { kOp, kCancel, kWake };
    Type type;
    std::uint64_t user_data;  // op id, or cancel target
  };
  struct FdOps {
    std::uint64_t read_id = 0;
    std::uint64_t write_id = 0;
  };

  UringLoop(const Ring& ring, int event_fd)
      : ring_(ring), event_fd_(event_fd) {
    wake_iov_.iov_base = &wake_buf_;
    wake_iov_.iov_len = sizeof(wake_buf_);
  }

  static std::unique_ptr<PendingOp> make_io_op(PendingOp::Kind kind, int fd,
                                               std::span<const iovec> iov,
                                               IoHandler on_done) {
    RELDEV_EXPECTS(iov.size() <= kMaxIov && !iov.empty());
    auto op = std::make_unique<PendingOp>();
    op->kind = kind;
    op->fd = fd;
    op->iov_count = static_cast<unsigned>(iov.size());
    std::copy(iov.begin(), iov.end(), op->iov.begin());
    op->io_handler = std::move(on_done);
    return op;
  }

  void wake() {
    const std::uint64_t one = 1;
    (void)::write(event_fd_, &one, sizeof(one));
  }

  void drain_posted() {
    std::vector<Task> tasks;
    {
      const MutexLock lock(mutex_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();
  }

  void arm(std::unique_ptr<PendingOp> op) {
    const std::uint64_t id = next_id_++;
    op->user_data = id;
    auto& index = fd_index_[op->fd];
    auto& slot =
        op->kind == PendingOp::Kind::kWrite ? index.write_id : index.read_id;
    RELDEV_EXPECTS(slot == 0);  // one op per class per fd
    slot = id;
    ops_.emplace(id, std::move(op));
    submit_queue_.push_back(Submission{Submission::Type::kOp, id});
  }

  void arm_wake() {
    submit_queue_.push_back(Submission{Submission::Type::kWake, kWakeData});
  }

  io_uring_sqe* try_get_sqe() {
    const unsigned head = __atomic_load_n(ring_.sq_head, __ATOMIC_ACQUIRE);
    if (sq_local_tail_ - head >= ring_.sq_entries) return nullptr;  // full
    const unsigned slot = sq_local_tail_ & ring_.sq_mask;
    io_uring_sqe* sqe = &ring_.sqes[slot];
    std::memset(sqe, 0, sizeof(*sqe));
    ring_.sq_array[slot] = slot;
    ++sq_local_tail_;
    return sqe;
  }

  /// Move staged submissions into SQEs and publish the tail. Returns the
  /// number of SQEs this iteration hands to io_uring_enter.
  unsigned stage_submissions() {
    while (!submit_queue_.empty()) {
      const Submission sub = submit_queue_.front();
      if (sub.type == Submission::Type::kOp) {
        auto it = ops_.find(sub.user_data);
        if (it == ops_.end() || it->second->cancelled) {
          // Cancelled before it ever reached the kernel: complete the
          // cancellation locally, no CQE will come.
          if (it != ops_.end()) ops_.erase(it);
          submit_queue_.pop_front();
          continue;
        }
        io_uring_sqe* sqe = try_get_sqe();
        if (sqe == nullptr) break;
        fill_op_sqe(*sqe, *it->second);
      } else {
        io_uring_sqe* sqe = try_get_sqe();
        if (sqe == nullptr) break;
        if (sub.type == Submission::Type::kWake) {
          sqe->opcode = IORING_OP_READV;
          sqe->fd = event_fd_;
          sqe->addr = reinterpret_cast<std::uint64_t>(&wake_iov_);
          sqe->len = 1;
          sqe->user_data = kWakeData;
        } else {
          sqe->opcode = IORING_OP_ASYNC_CANCEL;
          sqe->fd = -1;
          sqe->addr = sub.user_data;  // target op
          sqe->user_data = kDiscardData;
        }
      }
      submit_queue_.pop_front();
    }
    __atomic_store_n(ring_.sq_tail, sq_local_tail_, __ATOMIC_RELEASE);
    const unsigned head = __atomic_load_n(ring_.sq_head, __ATOMIC_ACQUIRE);
    return sq_local_tail_ - head;
  }

  static void fill_op_sqe(io_uring_sqe& sqe, const PendingOp& op) {
    sqe.fd = op.fd;
    sqe.user_data = op.user_data;
    switch (op.kind) {
      case PendingOp::Kind::kAccept:
        sqe.opcode = IORING_OP_ACCEPT;
        sqe.accept_flags = SOCK_NONBLOCK;
        break;
      case PendingOp::Kind::kRead:
      case PendingOp::Kind::kWrite:
        sqe.opcode = op.kind == PendingOp::Kind::kRead ? IORING_OP_READV
                                                       : IORING_OP_WRITEV;
        sqe.addr = reinterpret_cast<std::uint64_t>(op.iov.data());
        sqe.len = op.iov_count;
        break;
    }
  }

  void reap_completions() {
    unsigned head = *ring_.cq_head;  // only this thread advances it
    for (;;) {
      const unsigned tail =
          __atomic_load_n(ring_.cq_tail, __ATOMIC_ACQUIRE);
      if (head == tail) break;
      const io_uring_cqe cqe = ring_.cqes[head & ring_.cq_mask];
      ++head;
      // Publish per-CQE so handlers that arm new I/O never see a full CQ.
      __atomic_store_n(ring_.cq_head, head, __ATOMIC_RELEASE);
      handle_cqe(cqe);
    }
  }

  void handle_cqe(const io_uring_cqe& cqe) {
    if (cqe.user_data == kDiscardData) return;  // ASYNC_CANCEL's own result
    if (cqe.user_data == kWakeData) {
      wake_buf_ = 0;
      arm_wake();  // posted tasks drain at the top of the loop
      return;
    }
    auto it = ops_.find(cqe.user_data);
    if (it == ops_.end()) return;  // stale (should not happen: ids are unique)
    std::unique_ptr<PendingOp> op = std::move(it->second);
    ops_.erase(it);
    if (op->cancelled) return;  // handler must never fire
    if (cqe.res == -EINTR || cqe.res == -EAGAIN ||
        (op->kind == PendingOp::Kind::kAccept && cqe.res == -ECONNABORTED)) {
      resubmit(std::move(op));
      return;
    }
    clear_fd_index(*op);
    if (op->kind == PendingOp::Kind::kAccept) {
      if (cqe.res >= 0) {
        op->accept_handler(cqe.res);
      } else {
        op->accept_handler(errors::io_error(std::string("io_uring accept: ") +
                                            std::strerror(-cqe.res)));
      }
      return;
    }
    if (cqe.res >= 0) {
      op->io_handler(static_cast<std::size_t>(cqe.res));
    } else {
      op->io_handler(errors::io_error(
          std::string(op->kind == PendingOp::Kind::kRead ? "io_uring readv: "
                                                         : "io_uring writev: ") +
          std::strerror(-cqe.res)));
    }
  }

  void resubmit(std::unique_ptr<PendingOp> op) {
    const std::uint64_t id = op->user_data;
    ops_.emplace(id, std::move(op));
    submit_queue_.push_back(Submission{Submission::Type::kOp, id});
  }

  void clear_fd_index(const PendingOp& op) {
    auto it = fd_index_.find(op.fd);
    if (it == fd_index_.end()) return;
    if (it->second.read_id == op.user_data) it->second.read_id = 0;
    if (it->second.write_id == op.user_data) it->second.write_id = 0;
    if (it->second.read_id == 0 && it->second.write_id == 0) {
      fd_index_.erase(it);
    }
  }

  Ring ring_;
  const int event_fd_;
  std::atomic<bool> stopping_{false};
  Mutex mutex_{"IoUringLoop.posted"};
  std::vector<Task> posted_ RELDEV_GUARDED_BY(mutex_);
  // Everything below is loop-thread-only.
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingOp>> ops_;
  std::unordered_map<int, FdOps> fd_index_;
  std::deque<Submission> submit_queue_;
  unsigned sq_local_tail_ = 0;  // producer tail, published on flush
  std::uint64_t next_id_ = 1;
  std::uint64_t wake_buf_ = 0;
  iovec wake_iov_{};
  TimerHeap timers_;
};

}  // namespace

std::unique_ptr<EventLoop> make_io_uring_loop() {
  if (!probe_io_uring()) return nullptr;
  return UringLoop::make();
}

bool probe_io_uring() {
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return (params.features & kRequiredFeatures) == kRequiredFeatures;
  }();
  return available;
}

}  // namespace reldev::net::tcp::detail

#else  // !RELDEV_IO_URING_USABLE

namespace reldev::net::tcp::detail {

std::unique_ptr<EventLoop> make_io_uring_loop() { return nullptr; }
bool probe_io_uring() { return false; }

}  // namespace reldev::net::tcp::detail

#endif
