// Private pieces shared by the EventLoop backends (epoll, io_uring): the
// pending-operation record and the lazy-cancellation timer heap. Not
// installed — include only from src/net/tcp/*.cpp.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "reldev/net/tcp/event_loop.hpp"

namespace reldev::net::tcp::detail {

/// One armed I/O operation. Owned by the loop until its completion handler
/// has been invoked (or the op was cancelled).
struct PendingOp {
  enum class Kind : std::uint8_t { kAccept, kRead, kWrite };

  Kind kind = Kind::kRead;
  int fd = -1;
  // The iovec array is copied at arm time (the caller's span may die), but
  // the buffers it points into must outlive the operation.
  std::array<iovec, EventLoop::kMaxIov> iov{};
  unsigned iov_count = 0;
  EventLoop::IoHandler io_handler;
  EventLoop::AcceptHandler accept_handler;
  // io_uring only: submitted-to-kernel ops cannot be dropped synchronously;
  // a cancelled op's CQE is awaited and discarded.
  bool cancelled = false;
  std::uint64_t user_data = 0;
};

/// Min-heap of one-shot timers with lazy cancellation (cancelled ids stay
/// in the heap and are skipped when they surface). Loop-thread-only.
class TimerHeap {
 public:
  using Clock = std::chrono::steady_clock;

  EventLoop::TimerId add(std::chrono::milliseconds delay,
                         EventLoop::Task task) {
    const EventLoop::TimerId id = next_id_++;
    heap_.push_back(Entry{Clock::now() + delay, id, std::move(task)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
  }

  void cancel(EventLoop::TimerId id) { cancelled_.insert(id); }

  /// Milliseconds until the nearest live timer (>= 0), or nullopt when no
  /// timers are armed.
  [[nodiscard]] std::optional<int> next_timeout_ms() {
    drop_cancelled_top();
    if (heap_.empty()) return std::nullopt;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        heap_.front().deadline - Clock::now());
    return static_cast<int>(std::max<std::int64_t>(remaining.count(), 0));
  }

  /// Pop every timer due now, in deadline order.
  [[nodiscard]] std::vector<EventLoop::Task> take_due() {
    std::vector<EventLoop::Task> due;
    const auto now = Clock::now();
    for (;;) {
      drop_cancelled_top();
      if (heap_.empty() || heap_.front().deadline > now) break;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      due.push_back(std::move(heap_.back().task));
      heap_.pop_back();
    }
    return due;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Entry {
    Clock::time_point deadline;
    EventLoop::TimerId id;
    EventLoop::Task task;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.deadline > b.deadline;
    }
  };

  void drop_cancelled_top() {
    while (!heap_.empty() && cancelled_.erase(heap_.front().id) > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventLoop::TimerId> cancelled_;
  EventLoop::TimerId next_id_ = 1;
};

/// io_uring factory + probe, implemented in io_uring_loop.cpp. Returns
/// nullptr / false when the backend is compiled out (RELDEV_IO_URING=OFF)
/// or the kernel lacks the required features.
[[nodiscard]] std::unique_ptr<EventLoop> make_io_uring_loop();
[[nodiscard]] bool probe_io_uring();

}  // namespace reldev::net::tcp::detail
