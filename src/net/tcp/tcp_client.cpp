#include "reldev/net/tcp/tcp_client.hpp"

#include <utility>

namespace reldev::net::tcp {

TcpChannel::TcpChannel(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

Status TcpChannel::ensure_connected() {
  if (socket_.has_value() && socket_->valid()) return Status::ok();
  auto socket = Socket::connect(host_, port_);
  if (!socket) return socket.status();
  socket_ = std::move(socket).value();
  return Status::ok();
}

void TcpChannel::disconnect() {
  const std::lock_guard<std::mutex> lock(mutex_);
  socket_.reset();
}

Result<Message> TcpChannel::call(const Message& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto encoded = request.encode();
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (auto status = ensure_connected(); !status.is_ok()) return status;
    const bool fresh_connection = attempt > 0;
    auto status = write_frame(*socket_, encoded);
    if (status.is_ok()) {
      auto frame = read_frame(*socket_);
      if (frame) return Message::decode(frame.value());
      status = frame.status();
    }
    socket_.reset();
    // A stale cached connection fails immediately; retry once on a fresh
    // one. Anything failing on a fresh connection is reported as-is.
    if (fresh_connection) return status;
  }
  return errors::unavailable("call failed after reconnect");
}

void TcpPeerTransport::set_endpoint(SiteId site, const std::string& host,
                                    std::uint16_t port) {
  const std::lock_guard<std::mutex> lock(mutex_);
  channels_[site] = std::make_unique<TcpChannel>(host, port);
}

void TcpPeerTransport::remove_endpoint(SiteId site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  channels_.erase(site);
}

TcpChannel* TcpPeerTransport::channel(SiteId site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = channels_.find(site);
  return it == channels_.end() ? nullptr : it->second.get();
}

void TcpPeerTransport::count(std::uint64_t transmissions) const {
  if (meter_ != nullptr) meter_->add(transmissions);
}

Result<Message> TcpPeerTransport::call(SiteId /*from*/, SiteId to,
                                       const Message& request) {
  TcpChannel* ch = channel(to);
  if (ch == nullptr) {
    return errors::unavailable("no endpoint for site " + std::to_string(to));
  }
  count(1);
  auto reply = ch->call(request);
  if (reply) count(1);
  return reply;
}

Status TcpPeerTransport::send(SiteId from, SiteId to, const Message& message) {
  // TCP servers always reply; one-way semantics are "call and discard".
  // Unreachable peers are fine: fail-stop peers simply miss the message.
  auto reply = call(from, to, message);
  (void)reply;
  return Status::ok();
}

Status TcpPeerTransport::multicast(SiteId from, const SiteSet& to,
                                   const Message& message) {
  for (const SiteId dest : to) {
    if (dest == from) continue;
    (void)send(from, dest, message);
  }
  return Status::ok();
}

std::vector<GatherReply> TcpPeerTransport::multicast_call(
    SiteId from, const SiteSet& to, const Message& request) {
  std::vector<GatherReply> replies;
  for (const SiteId dest : to) {
    if (dest == from) continue;
    auto reply = call(from, dest, request);
    if (reply) replies.emplace_back(dest, std::move(reply).value());
  }
  return replies;
}

}  // namespace reldev::net::tcp
