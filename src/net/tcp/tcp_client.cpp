#include "reldev/net/tcp/tcp_client.hpp"

#include <algorithm>
#include <utility>

namespace reldev::net::tcp {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds remaining_until(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               Clock::now());
}

}  // namespace

TcpChannel::TcpChannel(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout,
                       const PoolOptions& pool)
    : host_(std::move(host)), port_(port), timeout_(timeout), pool_(pool) {}

void TcpChannel::set_timeout(std::chrono::milliseconds timeout) {
  const MutexLock lock(mutex_);
  timeout_ = timeout;
}

std::chrono::milliseconds TcpChannel::timeout() const {
  const MutexLock lock(mutex_);
  return timeout_;
}

void TcpChannel::disconnect() {
  const MutexLock lock(mutex_);
  idle_.clear();
}

void TcpChannel::set_pool_options(const PoolOptions& pool) {
  const MutexLock lock(mutex_);
  pool_ = pool;
  evict_locked();
}

std::size_t TcpChannel::idle_connections() const {
  const MutexLock lock(mutex_);
  return idle_.size();
}

void TcpChannel::evict_locked() {
  // Age first: entries are LIFO, so the stalest live at the front.
  if (pool_.max_idle_age.count() > 0) {
    const auto cutoff = Clock::now() - pool_.max_idle_age;
    std::size_t expired = 0;
    while (expired < idle_.size() && idle_[expired].since < cutoff) ++expired;
    idle_.erase(idle_.begin(),
                idle_.begin() + static_cast<std::ptrdiff_t>(expired));
  }
  if (idle_.size() > pool_.max_idle) {
    idle_.erase(idle_.begin(),
                idle_.begin() +
                    static_cast<std::ptrdiff_t>(idle_.size() - pool_.max_idle));
  }
}

Result<Socket> TcpChannel::acquire(bool& pooled,
                                   std::chrono::milliseconds remaining) {
  {
    const MutexLock lock(mutex_);
    evict_locked();
    if (!idle_.empty()) {
      Socket socket = std::move(idle_.back().socket);
      idle_.pop_back();
      pooled = true;
      pool_hits_.fetch_add(1);
      return socket;
    }
  }
  pooled = false;
  pool_misses_.fetch_add(1);
  return Socket::connect(host_, port_, remaining);
}

void TcpChannel::release(Socket socket) {
  if (!socket.valid()) return;
  const MutexLock lock(mutex_);
  if (idle_.size() < pool_.max_idle) {
    idle_.push_back(IdleSocket{std::move(socket), Clock::now()});
  }
}

Result<Message> TcpChannel::call(const Message& request) {
  const auto encoded = request.encode();
  const auto deadline = Clock::now() + timeout();
  // Retry-after-reconnect is only safe while the request cannot have been
  // (even partially) executed: the server decodes nothing until a complete
  // frame has arrived, so a failed write_frame is always replayable. Once
  // the frame is fully written the server may be executing it, and a reply
  // failure must surface as an error — blind replay would double-execute.
  // Each pooled socket that turns out stale (server restart) is discarded
  // and the next one tried; the pool is bounded, so this terminates.
  for (;;) {
    auto remaining = remaining_until(deadline);
    if (remaining.count() <= 0) {
      return errors::unavailable("call to " + host_ + ":" +
                                 std::to_string(port_) + " timed out");
    }
    bool pooled = false;
    auto acquired = acquire(pooled, remaining);
    if (!acquired) return acquired.status();
    Socket socket = std::move(acquired).value();
    remaining = std::max(remaining_until(deadline),
                         std::chrono::milliseconds{1});
    socket.set_send_timeout(remaining);
    socket.set_recv_timeout(remaining);
    if (auto status = write_frame(socket, encoded); !status.is_ok()) {
      // Not delivered. A stale pooled connection fails here immediately;
      // retry on the next (possibly fresh) socket while the deadline
      // allows. A fresh connection failing to send is a real error.
      if (pooled && remaining_until(deadline).count() > 0) continue;
      return errors::unavailable("send to " + host_ + ":" +
                                 std::to_string(port_) +
                                 " failed: " + status.to_string());
    }
    auto frame = read_frame(socket);
    if (!frame) {
      // Delivered but unanswered: the server may have executed the
      // request. Preserve the underlying error — a CRC reject stays the
      // typed kCorruption — and let the caller's retry policy decide.
      if (frame.status().code() == ErrorCode::kCorruption) {
        return frame.status();
      }
      return errors::unavailable("reply from " + host_ + ":" +
                                 std::to_string(port_) +
                                 " failed: " + frame.status().to_string());
    }
    release(std::move(socket));
    return Message::decode(frame.value());
  }
}

TcpPeerTransport::~TcpPeerTransport() {
  const MutexLock lock(outstanding_mutex_);
  while (outstanding_ != 0) outstanding_cv_.wait(outstanding_mutex_);
}

void TcpPeerTransport::set_endpoint(SiteId site, const std::string& host,
                                    std::uint16_t port) {
  const MutexLock lock(mutex_);
  channels_[site] =
      std::make_shared<TcpChannel>(host, port, call_timeout_, pool_options_);
}

void TcpPeerTransport::remove_endpoint(SiteId site) {
  const MutexLock lock(mutex_);
  channels_.erase(site);
}

void TcpPeerTransport::set_call_timeout(std::chrono::milliseconds timeout) {
  const MutexLock lock(mutex_);
  call_timeout_ = timeout;
  for (auto& [site, channel] : channels_) channel->set_timeout(timeout);
}

void TcpPeerTransport::set_pool_options(const PoolOptions& pool) {
  const MutexLock lock(mutex_);
  pool_options_ = pool;
  for (auto& [site, channel] : channels_) channel->set_pool_options(pool);
}

std::uint64_t TcpPeerTransport::pool_hits() const {
  const MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [site, channel] : channels_) total += channel->pool_hits();
  return total;
}

std::uint64_t TcpPeerTransport::pool_misses() const {
  const MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [site, channel] : channels_) {
    total += channel->pool_misses();
  }
  return total;
}

std::shared_ptr<TcpChannel> TcpPeerTransport::channel(SiteId site) {
  const MutexLock lock(mutex_);
  auto it = channels_.find(site);
  return it == channels_.end() ? nullptr : it->second;
}

std::vector<std::pair<SiteId, std::shared_ptr<TcpChannel>>>
TcpPeerTransport::channels_for(SiteId from, const SiteSet& to) {
  std::vector<std::pair<SiteId, std::shared_ptr<TcpChannel>>> targets;
  const MutexLock lock(mutex_);
  for (const SiteId dest : to) {
    if (dest == from) continue;
    auto it = channels_.find(dest);
    if (it == channels_.end()) continue;
    targets.emplace_back(dest, it->second);
  }
  return targets;
}

void TcpPeerTransport::count(std::uint64_t transmissions) const {
  TrafficMeter* const meter = meter_.load(std::memory_order_acquire);
  if (meter != nullptr) meter->add(transmissions);
}

Result<Message> TcpPeerTransport::call(SiteId /*from*/, SiteId to,
                                       const Message& request) {
  auto ch = channel(to);
  if (ch == nullptr) {
    return errors::unavailable("no endpoint for site " + std::to_string(to));
  }
  count(1);
  auto reply = ch->call(request);
  if (reply) count(1);
  return reply;
}

Status TcpPeerTransport::send(SiteId from, SiteId to, const Message& message) {
  // TCP servers always reply; one-way semantics are "call and discard".
  // Unreachable peers are fine: fail-stop peers simply miss the message.
  auto reply = call(from, to, message);
  reply.ignore_error();
  return Status::ok();
}

Status TcpPeerTransport::multicast(SiteId from, const SiteSet& to,
                                   const Message& message) {
  // Concurrent call-and-discard to every peer: the round costs the slowest
  // peer's round trip, not the sum, and the acks are in before we return
  // (the engines rely on pushed writes being applied when multicast ends).
  (void)multicast_call(from, to, message, EarlyStop{});
  return Status::ok();
}

std::vector<GatherReply> TcpPeerTransport::multicast_call(
    SiteId from, const SiteSet& to, const Message& request,
    const EarlyStop& early_stop) {
  struct GatherState {
    Mutex mutex{"TcpPeerTransport.GatherState.mutex"};
    CondVar cv;
    std::vector<GatherReply> replies RELDEV_GUARDED_BY(mutex);
    std::size_t pending RELDEV_GUARDED_BY(mutex) = 0;
    bool stopped RELDEV_GUARDED_BY(mutex) = false;
  };

  auto targets = channels_for(from, to);
  if (targets.empty()) return {};

  // Tasks may run past this call's return (early stop): everything they
  // touch is either shared (state, request) or guaranteed to outlive the
  // transport (the meter), and the destructor drains `outstanding_`.
  auto state = std::make_shared<GatherState>();
  state->pending = targets.size();
  auto shared_request = std::make_shared<const Message>(request);
  TrafficMeter* const meter = meter_.load(std::memory_order_acquire);
  const OpKind kind = meter != nullptr ? meter->current_op() : OpKind::kOther;

  {
    const MutexLock lock(outstanding_mutex_);
    outstanding_ += targets.size();
  }
  count(targets.size());  // one request transmission per addressed peer

  for (auto& [site, ch] : targets) {
    FanOut::shared().submit(
        [this, site = site, ch = ch, shared_request, state, meter, kind] {
          auto reply = ch->call(*shared_request);
          // Meter the reply even if the gather already returned: the
          // straggler's answer crossed the network either way.
          if (reply.is_ok() && meter != nullptr) meter->add_for(kind, 1);
          {
            const MutexLock lock(state->mutex);
            if (reply.is_ok() && !state->stopped) {
              state->replies.emplace_back(site, std::move(reply).value());
            }
            --state->pending;
          }
          state->cv.notify_all();
          // Last action: release the outstanding slot. The notify happens
          // under the lock so ~TcpPeerTransport cannot resume (and free
          // `this`) before this task is fully done with it.
          const MutexLock lock(outstanding_mutex_);
          --outstanding_;
          outstanding_cv_.notify_all();
        });
  }

  std::vector<GatherReply> gathered;
  {
    const MutexLock lock(state->mutex);
    while (state->pending != 0 &&
           !(early_stop && early_stop(state->replies))) {
      state->cv.wait(state->mutex);
    }
    state->stopped = true;
    gathered = std::move(state->replies);
  }
  return gathered;
}

}  // namespace reldev::net::tcp
