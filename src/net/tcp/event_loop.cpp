// The portable epoll backend, and the EventLoop factory. Edge-triggered
// epoll with persistent registration: an fd is registered for
// EPOLLIN|EPOLLOUT|EPOLLET once, the first time an op has to park, and
// stays registered until cancel(fd). Readiness is tracked in userspace
// flags that a returned EAGAIN clears and an epoll edge sets, so the
// steady-state request cycle costs zero epoll_ctl calls — arming attempts
// the syscall immediately (sockets are usually writable, and a pipelined
// peer's next frame is often already buffered) and only a not-ready fd
// ever touches the interest list. Immediate completions are queued and
// dispatched from the loop body, never recursively from inside the arming
// call, and only after the loop is done touching the fd.
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "event_loop_internal.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::net::tcp {

namespace {

using detail::PendingOp;

Status errno_status(const char* what) {
  return errors::io_error(std::string(what) + ": " + std::strerror(errno));
}

/// Perform the syscall behind `op` once. Returns false when the fd is not
/// ready (EAGAIN — re-arm and wait); on true, `io_result`/`accept_fd` carry
/// the completion value for the op's kind.
bool perform(PendingOp& op, Result<std::size_t>& io_result,
             Result<int>& accept_fd) {
  if (op.kind == PendingOp::Kind::kAccept) {
    const int fd = ::accept4(op.fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) {
      accept_fd = fd;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    if (errno == EINTR || errno == ECONNABORTED) return false;  // retry
    accept_fd = errno_status("accept4");
    return true;
  }
  for (;;) {
    const ssize_t n =
        op.kind == PendingOp::Kind::kRead
            ? ::readv(op.fd, op.iov.data(), static_cast<int>(op.iov_count))
            : ::writev(op.fd, op.iov.data(), static_cast<int>(op.iov_count));
    if (n >= 0) {
      io_result = static_cast<std::size_t>(n);
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    io_result = errno_status(op.kind == PendingOp::Kind::kRead ? "readv"
                                                               : "writev");
    return true;
  }
}

class EpollLoop final : public EventLoop {
 public:
  static Result<std::unique_ptr<EventLoop>> make() {
    const int epoll_fd = ::epoll_create1(0);
    if (epoll_fd < 0) return errno_status("epoll_create1");
    const int event_fd = ::eventfd(0, EFD_NONBLOCK);
    if (event_fd < 0) {
      const Status status = errno_status("eventfd");
      ::close(epoll_fd);
      return status;
    }
    auto loop = std::unique_ptr<EpollLoop>(new EpollLoop(epoll_fd, event_fd));
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: wake-ups must never be missed
    ev.data.fd = event_fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, event_fd, &ev) < 0) {
      return errno_status("epoll_ctl(eventfd)");
    }
    return {std::move(loop)};
  }

  ~EpollLoop() override {
    ::close(event_fd_);
    ::close(epoll_fd_);
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kEpoll;
  }

  void run() override {
    while (!stopping_.load(std::memory_order_acquire)) {
      drain_posted();
      for (auto& task : timers_.take_due()) task();
      dispatch_ready();
      if (stopping_.load(std::memory_order_acquire)) break;

      const auto timeout = timers_.next_timeout_ms();
      std::array<epoll_event, 128> events;
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 timeout.value_or(-1));
      if (n < 0) {
        if (errno == EINTR) continue;
        RELDEV_WARN("event-loop") << "epoll_wait: " << std::strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        const epoll_event& ev = events[static_cast<std::size_t>(i)];
        if (ev.data.fd == event_fd_) {
          std::uint64_t drained = 0;
          while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;  // posted tasks run at the top of the loop
        }
        handle_event(ev.data.fd, ev.events);
      }
    }
  }

  void stop() override {
    stopping_.store(true, std::memory_order_release);
    wake();
  }

  void post(Task task) override {
    {
      const MutexLock lock(mutex_);
      if (stopping_.load(std::memory_order_acquire)) return;  // dropped
      posted_.push_back(std::move(task));
    }
    wake();
  }

  void async_accept(int listen_fd, AcceptHandler on_accept) override {
    auto op = alloc_op();
    op->kind = PendingOp::Kind::kAccept;
    op->fd = listen_fd;
    op->accept_handler = std::move(on_accept);
    arm(std::move(op));
  }

  void async_readv(int fd, std::span<const iovec> iov,
                   IoHandler on_done) override {
    arm(make_io_op(PendingOp::Kind::kRead, fd, iov, std::move(on_done)));
  }

  void async_writev(int fd, std::span<const iovec> iov,
                    IoHandler on_done) override {
    arm(make_io_op(PendingOp::Kind::kWrite, fd, iov, std::move(on_done)));
  }

  void cancel(int fd) override {
    auto it = fds_.find(fd);
    if (it != fds_.end()) {
      if (it->second.registered) {
        (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      }
      fds_.erase(it);
    }
    // Drop not-yet-dispatched immediate completions for this fd too:
    // cancel() promises the handler never fires.
    for (auto& ready : ready_) {
      if (ready.op != nullptr && ready.op->fd == fd) ready.op.reset();
    }
  }

  TimerId add_timer(std::chrono::milliseconds delay, Task task) override {
    return timers_.add(delay, std::move(task));
  }

  void cancel_timer(TimerId id) override { timers_.cancel(id); }

 private:
  /// Per-fd reactor state. `read_ready`/`write_ready` are the userspace
  /// shadow of edge-triggered readiness: set by an epoll edge (or
  /// optimistically before the first registration), cleared only when a
  /// syscall returns EAGAIN. The entry persists until cancel(fd) so the
  /// steady state never touches the interest list.
  struct FdState {
    std::unique_ptr<PendingOp> read_op;   // also holds accept ops
    std::unique_ptr<PendingOp> write_op;
    bool registered = false;
    bool read_ready = true;
    bool write_ready = true;
  };
  struct ReadyCompletion {
    std::unique_ptr<PendingOp> op;  // null = cancelled after completing
    Result<std::size_t> io_result{std::size_t{0}};
    Result<int> accept_fd{-1};
  };
  using FdMap = std::unordered_map<int, FdState>;

  EpollLoop(int epoll_fd, int event_fd)
      : epoll_fd_(epoll_fd), event_fd_(event_fd) {}

  std::unique_ptr<PendingOp> alloc_op() {
    if (op_pool_.empty()) return std::make_unique<PendingOp>();
    auto op = std::move(op_pool_.back());
    op_pool_.pop_back();
    return op;
  }

  void recycle(std::unique_ptr<PendingOp> op) {
    if (op_pool_.size() >= kOpPoolCap) return;
    op->io_handler = nullptr;
    op->accept_handler = nullptr;
    op_pool_.push_back(std::move(op));
  }

  std::unique_ptr<PendingOp> make_io_op(PendingOp::Kind kind, int fd,
                                        std::span<const iovec> iov,
                                        IoHandler on_done) {
    RELDEV_EXPECTS(iov.size() <= kMaxIov && !iov.empty());
    auto op = alloc_op();
    op->kind = kind;
    op->fd = fd;
    op->iov_count = static_cast<unsigned>(iov.size());
    std::copy(iov.begin(), iov.end(), op->iov.begin());
    op->io_handler = std::move(on_done);
    return op;
  }

  void wake() {
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the reader; ignore EAGAIN.
    (void)::write(event_fd_, &one, sizeof(one));
  }

  void drain_posted() {
    std::vector<Task> tasks;
    {
      const MutexLock lock(mutex_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();
  }

  /// Try the op now if its readiness shadow allows; queue its completion
  /// or park it in the fd state (registering the fd on first park).
  void arm(std::unique_ptr<PendingOp> op) {
    const int fd = op->fd;
    FdState& state = fds_[fd];
    const bool write_class = op->kind == PendingOp::Kind::kWrite;
    bool& ready_flag = write_class ? state.write_ready : state.read_ready;
    if (ready_flag) {
      ReadyCompletion ready;
      if (perform(*op, ready.io_result, ready.accept_fd)) {
        ready.op = std::move(op);
        ready_.push_back(std::move(ready));
        // A fresh fd that never parks never registers; but don't erase the
        // entry — the flags carry readiness knowledge to the next arm.
        return;
      }
      ready_flag = false;  // EAGAIN: the edge is consumed
    }
    auto& slot = write_class ? state.write_op : state.read_op;
    RELDEV_EXPECTS(slot == nullptr);  // one op per class per fd
    slot = std::move(op);
    if (!state.registered) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        RELDEV_WARN("event-loop")
            << "epoll_ctl(" << fd << "): " << std::strerror(errno);
        fail_fd_ops(fds_.find(fd), errno_status("epoll_ctl"));
        return;
      }
      state.registered = true;
    }
  }

  void fail_fd_ops(FdMap::iterator it, const Status& status) {
    FdState& state = it->second;
    auto read_op = std::move(state.read_op);
    auto write_op = std::move(state.write_op);
    if (state.registered) {
      (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->first, nullptr);
    }
    fds_.erase(it);
    if (read_op != nullptr) {
      ReadyCompletion ready;
      ready.op = std::move(read_op);
      ready.io_result = status;
      ready.accept_fd = status;
      ready_.push_back(std::move(ready));
    }
    if (write_op != nullptr) {
      ReadyCompletion ready;
      ready.op = std::move(write_op);
      ready.io_result = status;
      ready_.push_back(std::move(ready));
    }
  }

  void handle_event(int fd, std::uint32_t events) {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;  // stale event raced a cancel
    // An error/hangup surfaces through the armed syscalls.
    const bool error = (events & (EPOLLERR | EPOLLHUP)) != 0;
    FdState& state = it->second;
    if ((events & EPOLLIN) != 0 || error) state.read_ready = true;
    if ((events & EPOLLOUT) != 0 || error) state.write_ready = true;
    try_complete(state, /*write=*/false);
    try_complete(state, /*write=*/true);
  }

  void try_complete(FdState& state, bool write) {
    auto& slot = write ? state.write_op : state.read_op;
    bool& ready_flag = write ? state.write_ready : state.read_ready;
    if (slot == nullptr || !ready_flag) return;
    ReadyCompletion ready;
    if (!perform(*slot, ready.io_result, ready.accept_fd)) {
      ready_flag = false;  // spurious or retriable: stay parked
      return;
    }
    // Queue rather than dispatch inline: once the handler runs another
    // thread may observe the completion, and the dispatch path must not
    // assume the fd state entry is still alive.
    ready.op = std::move(slot);
    ready_.push_back(std::move(ready));
  }

  void dispatch_ready() {
    while (!ready_.empty()) {
      ReadyCompletion ready = std::move(ready_.front());
      ready_.pop_front();
      if (ready.op == nullptr) continue;  // cancelled
      auto op = std::move(ready.op);
      // Move the handler out and recycle the op first, so handlers that
      // arm new I/O reuse the allocation instead of growing the pool.
      if (op->kind == PendingOp::Kind::kAccept) {
        AcceptHandler handler = std::move(op->accept_handler);
        recycle(std::move(op));
        handler(std::move(ready.accept_fd));
      } else {
        IoHandler handler = std::move(op->io_handler);
        recycle(std::move(op));
        handler(std::move(ready.io_result));
      }
    }
  }

  static constexpr std::size_t kOpPoolCap = 256;

  const int epoll_fd_;
  const int event_fd_;
  std::atomic<bool> stopping_{false};
  Mutex mutex_{"EventLoop.posted"};
  std::vector<Task> posted_ RELDEV_GUARDED_BY(mutex_);
  // Everything below is loop-thread-only.
  FdMap fds_;
  std::deque<ReadyCompletion> ready_;
  std::vector<std::unique_ptr<PendingOp>> op_pool_;
  detail::TimerHeap timers_;
};

}  // namespace

bool EventLoop::io_uring_available() { return detail::probe_io_uring(); }

Result<std::unique_ptr<EventLoop>> EventLoop::create(Backend preferred) {
  if (preferred == Backend::kIoUring) {
    if (auto loop = detail::make_io_uring_loop(); loop != nullptr) {
      return {std::move(loop)};
    }
    RELDEV_WARN("event-loop")
        << "io_uring backend unavailable (compiled out or kernel lacks "
           "required features); falling back to epoll";
  }
  return EpollLoop::make();
}

}  // namespace reldev::net::tcp
