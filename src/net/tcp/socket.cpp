#include "reldev/net/tcp/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "reldev/util/lockdep.hpp"

namespace reldev::net::tcp {

namespace {

Status errno_status(const std::string& what) {
  return errors::io_error(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return errors::invalid_argument("cannot parse address '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::connect(const std::string& host, std::uint16_t port,
                               std::optional<std::chrono::milliseconds> timeout) {
  lockdep::check_blocking("connect");
  auto addr = make_address(host, port);
  if (!addr) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  Socket socket(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const auto unavailable = [&](const std::string& why) {
    return errors::unavailable("connect to " + host + ":" +
                               std::to_string(port) + ": " + why);
  };
  if (!timeout.has_value()) {
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                     sizeof(sockaddr_in));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return unavailable(std::strerror(errno));
    return socket;
  }
  // Bounded connect: non-blocking connect, poll for writability, then read
  // the final outcome from SO_ERROR.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                   sizeof(sockaddr_in));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) return unavailable(std::strerror(errno));
  if (rc < 0) {
    pollfd waiter{fd, POLLOUT, 0};
    const auto deadline = std::chrono::steady_clock::now() + *timeout;
    for (;;) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return unavailable("timed out");
      rc = ::poll(&waiter, 1, static_cast<int>(remaining.count()));
      if (rc > 0) break;
      if (rc == 0) return unavailable("timed out");
      if (errno != EINTR) return errno_status("poll");
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) < 0) {
      return errno_status("getsockopt");
    }
    if (error != 0) return unavailable(std::strerror(error));
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) return errno_status("fcntl");
  return socket;
}

namespace {
timeval to_timeval(std::chrono::milliseconds timeout) {
  if (timeout.count() < 0) timeout = std::chrono::milliseconds{0};
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return tv;
}
}  // namespace

namespace {
Status fd_set_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status("fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) < 0) {
    return errno_status("fcntl(F_SETFL)");
  }
  return Status::ok();
}
}  // namespace

Status Socket::set_nonblocking(bool enabled) {
  RELDEV_EXPECTS(valid());
  return fd_set_nonblocking(fd_, enabled);
}

Status Acceptor::set_nonblocking(bool enabled) {
  RELDEV_EXPECTS(valid());
  return fd_set_nonblocking(fd_, enabled);
}

void Socket::set_recv_timeout(std::chrono::milliseconds timeout) noexcept {
  if (fd_ < 0) return;
  const timeval tv = to_timeval(timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::set_send_timeout(std::chrono::milliseconds timeout) noexcept {
  if (fd_ < 0) return;
  const timeval tv = to_timeval(timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status Socket::write_all(std::span<const std::byte> data) {
  RELDEV_EXPECTS(valid());
  lockdep::check_blocking("send");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return errors::unavailable("send timed out");
      }
      return errno_status("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status Socket::read_exact(std::span<std::byte> data) {
  RELDEV_EXPECTS(valid());
  lockdep::check_blocking("recv");
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer is unresponsive. kUnavailable is
        // what the replicas' fail-stop handling expects of a dead peer.
        return errors::unavailable("recv timed out");
      }
      return errno_status("recv");
    }
    if (n == 0) {
      if (got == 0) return errors::unavailable("peer closed the connection");
      return errors::io_error("connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Acceptor::~Acceptor() { close(); }

Acceptor::Acceptor(Acceptor&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Acceptor& Acceptor::operator=(Acceptor&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Acceptor> Acceptor::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  Acceptor acceptor;
  acceptor.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return errno_status("bind");
  }
  if (::listen(fd, SOMAXCONN) < 0) return errno_status("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return errno_status("getsockname");
  }
  acceptor.port_ = ntohs(addr.sin_port);
  return acceptor;
}

Result<Socket> Acceptor::accept() {
  RELDEV_EXPECTS(valid());
  lockdep::check_blocking("accept");
  int client;
  do {
    client = ::accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) {
    return errors::unavailable(std::string("accept: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(client);
}

void Acceptor::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Acceptor::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace reldev::net::tcp
