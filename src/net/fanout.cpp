#include "reldev/net/fanout.hpp"

#include <algorithm>
#include <utility>

namespace reldev::net {

std::size_t FanOut::default_thread_count() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(8, hw);
}

FanOut::FanOut(std::size_t threads) {
  workers_.reserve(std::max<std::size_t>(1, threads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FanOut::~FanOut() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

FanOut& FanOut::shared() {
  static FanOut pool;
  return pool;
}

void FanOut::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void FanOut::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace reldev::net
