#include "reldev/net/fanout.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace reldev::net {

namespace {

std::mutex& shared_pool_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::unique_ptr<FanOut>& shared_pool_slot() {
  static std::unique_ptr<FanOut> slot;
  return slot;
}

}  // namespace

std::size_t FanOut::default_thread_count() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(8, hw);
}

FanOut::FanOut(std::size_t threads) {
  workers_.reserve(std::max<std::size_t>(1, threads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FanOut::~FanOut() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

FanOut& FanOut::shared() {
  const std::lock_guard<std::mutex> lock(shared_pool_mutex());
  auto& slot = shared_pool_slot();
  if (!slot) slot = std::make_unique<FanOut>();
  return *slot;
}

void FanOut::set_shared_thread_count(std::size_t threads) {
  const std::lock_guard<std::mutex> lock(shared_pool_mutex());
  auto& slot = shared_pool_slot();
  // Destroying the old pool drains its queue and joins its workers, so
  // every already-submitted task completes before the resize.
  slot.reset();
  slot = std::make_unique<FanOut>(threads);
}

void FanOut::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void FanOut::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace reldev::net
