#include "reldev/net/fanout.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace reldev::net {

namespace {

// Guards the process-wide pool slot. Namespace-scope (not function-local)
// statics so the GUARDED_BY relation is expressible; both are only touched
// after main() starts, so dynamic-initialization order is irrelevant.
Mutex g_shared_pool_mutex{"FanOut.shared-pool"};
std::unique_ptr<FanOut> g_shared_pool RELDEV_GUARDED_BY(g_shared_pool_mutex);

}  // namespace

std::size_t FanOut::default_thread_count() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(8, hw);
}

FanOut::FanOut(std::size_t threads) {
  workers_.reserve(std::max<std::size_t>(1, threads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FanOut::~FanOut() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

FanOut& FanOut::shared() {
  const MutexLock lock(g_shared_pool_mutex);
  if (!g_shared_pool) g_shared_pool = std::make_unique<FanOut>();
  return *g_shared_pool;
}

void FanOut::set_shared_thread_count(std::size_t threads) {
  const MutexLock lock(g_shared_pool_mutex);
  // Destroying the old pool drains its queue and joins its workers, so
  // every already-submitted task completes before the resize.
  g_shared_pool.reset();
  g_shared_pool = std::make_unique<FanOut>(threads);
}

void FanOut::submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void FanOut::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace reldev::net
