#include "reldev/net/message.hpp"

#include <algorithm>

#include "reldev/util/serial.hpp"

namespace reldev::net {

namespace {

// Wire tags; order matches the Payload variant and must never be reordered
// once released (append only).
enum class Tag : std::uint8_t {
  kVoteRequest = 0,
  kVoteReply,
  kBlockFetchRequest,
  kBlockFetchReply,
  kBlockUpdate,
  kWriteAllRequest,
  kWriteAllAck,
  kStateInquiry,
  kStateInfo,
  kRepairRequest,
  kRepairReply,
  kWasAvailableUpdate,
  kWasAvailableAck,
  kClientReadRequest,
  kClientReadReply,
  kClientWriteRequest,
  kClientWriteReply,
  kDeviceInfoRequest,
  kDeviceInfoReply,
  kErrorReply,
  kMultiBlockReadRequest,
  kMultiBlockReadReply,
  kMultiBlockWriteRequest,
  kMultiBlockWriteAck,
  kRangeVoteRequest,
  kRangeVoteReply,
  kBatchFetchRequest,
  kBatchFetchReply,
  kBatchWriteRequest,
  kDigestRequest,
  kDigestReply,
};

void put_site_set(BufferWriter& w, const SiteSet& set) {
  std::vector<std::uint64_t> members(set.begin(), set.end());
  w.put_u64_vector(members);
}

Result<SiteSet> get_site_set(BufferReader& r) {
  auto members = r.get_u64_vector();
  if (!members) return members.status();
  SiteSet set;
  for (const auto m : members.value()) set.insert(static_cast<SiteId>(m));
  return set;
}

void put_block_data(BufferWriter& w, const BlockData& data) {
  w.put_bytes(data);
}

Result<BlockData> get_block_data(BufferReader& r) { return r.get_bytes(); }

void put_block_update(BufferWriter& w, const BlockUpdate& u) {
  w.put_u64(u.block);
  w.put_u64(u.version);
  put_block_data(w, u.data);
}

Result<BlockUpdate> get_block_update(BufferReader& r) {
  BlockUpdate u;
  auto block = r.get_u64();
  if (!block) return block.status();
  u.block = block.value();
  auto version = r.get_u64();
  if (!version) return version.status();
  u.version = version.value();
  auto data = get_block_data(r);
  if (!data) return data.status();
  u.data = std::move(data).value();
  return u;
}

struct Encoder {
  BufferWriter& w;

  void operator()(const VoteRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kVoteRequest));
    w.put_u8(static_cast<std::uint8_t>(m.access));
    w.put_u64(m.block);
  }
  void operator()(const VoteReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kVoteReply));
    w.put_u64(m.version);
    w.put_u32(m.weight_millivotes);
  }
  void operator()(const BlockFetchRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kBlockFetchRequest));
    w.put_u64(m.block);
  }
  void operator()(const BlockFetchReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kBlockFetchReply));
    w.put_u64(m.version);
    put_block_data(w, m.data);
  }
  void operator()(const BlockUpdate& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kBlockUpdate));
    put_block_update(w, m);
  }
  void operator()(const WriteAllRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kWriteAllRequest));
    w.put_u64(m.block);
    w.put_u64(m.version);
    put_block_data(w, m.data);
    put_site_set(w, m.was_available);
  }
  void operator()(const WriteAllAck&) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kWriteAllAck));
  }
  void operator()(const StateInquiry&) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kStateInquiry));
  }
  void operator()(const StateInfo& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kStateInfo));
    w.put_u8(static_cast<std::uint8_t>(m.state));
    w.put_u64(m.version_total);
    put_site_set(w, m.was_available);
  }
  void operator()(const RepairRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kRepairRequest));
    m.versions.encode(w);
  }
  void operator()(const RepairReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kRepairReply));
    m.versions.encode(w);
    w.put_u32(static_cast<std::uint32_t>(m.blocks.size()));
    for (const auto& block : m.blocks) put_block_update(w, block);
  }
  void operator()(const WasAvailableUpdate& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kWasAvailableUpdate));
    put_site_set(w, m.was_available);
    w.put_bool(m.replace);
  }
  void operator()(const WasAvailableAck&) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kWasAvailableAck));
  }
  void operator()(const ClientReadRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kClientReadRequest));
    w.put_u64(m.block);
  }
  void operator()(const ClientReadReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kClientReadReply));
    w.put_u8(m.error_code);
    put_block_data(w, m.data);
  }
  void operator()(const ClientWriteRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kClientWriteRequest));
    w.put_u64(m.block);
    put_block_data(w, m.data);
  }
  void operator()(const ClientWriteReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kClientWriteReply));
    w.put_u8(m.error_code);
  }
  void operator()(const DeviceInfoRequest&) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kDeviceInfoRequest));
  }
  void operator()(const DeviceInfoReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kDeviceInfoReply));
    w.put_u64(m.block_count);
    w.put_u64(m.block_size);
  }
  void operator()(const ErrorReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kErrorReply));
    w.put_u8(m.error_code);
    w.put_string(m.message);
  }
  void operator()(const MultiBlockReadRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kMultiBlockReadRequest));
    w.put_u64(m.first);
    w.put_u32(m.count);
  }
  void operator()(const MultiBlockReadReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kMultiBlockReadReply));
    w.put_u8(m.error_code);
    put_block_data(w, m.data);
  }
  void operator()(const MultiBlockWriteRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kMultiBlockWriteRequest));
    w.put_u64(m.first);
    put_block_data(w, m.data);
  }
  void operator()(const MultiBlockWriteAck& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kMultiBlockWriteAck));
    w.put_u8(m.error_code);
  }
  void operator()(const RangeVoteRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kRangeVoteRequest));
    w.put_u8(static_cast<std::uint8_t>(m.access));
    w.put_u64(m.first);
    w.put_u32(m.count);
  }
  void operator()(const RangeVoteReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kRangeVoteReply));
    w.put_u32(m.weight_millivotes);
    w.put_u64_vector(m.versions);
  }
  void operator()(const BatchFetchRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kBatchFetchRequest));
    w.put_u64_vector(m.blocks);
  }
  void operator()(const BatchFetchReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kBatchFetchReply));
    w.put_u32(static_cast<std::uint32_t>(m.updates.size()));
    for (const auto& update : m.updates) put_block_update(w, update);
  }
  void operator()(const BatchWriteRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kBatchWriteRequest));
    w.put_u32(static_cast<std::uint32_t>(m.updates.size()));
    for (const auto& update : m.updates) put_block_update(w, update);
    put_site_set(w, m.was_available);
  }
  void operator()(const DigestRequest& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kDigestRequest));
    w.put_u64(m.first);
    w.put_u32(m.count);
  }
  void operator()(const DigestReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(Tag::kDigestReply));
    w.put_u64(m.first);
    w.put_u64_vector(m.versions);
    w.put_u32(static_cast<std::uint32_t>(m.digests.size()));
    for (const auto digest : m.digests) w.put_u32(digest);
  }
};

template <typename T>
Result<Payload> ok_payload(Result<T> r) {
  if (!r) return r.status();
  return Payload{std::move(r).value()};
}

Result<Payload> decode_payload(Tag tag, BufferReader& r) {
  switch (tag) {
    case Tag::kVoteRequest: {
      auto access = r.get_u8();
      if (!access) return access.status();
      if (access.value() > 1) return errors::protocol("bad access kind");
      auto block = r.get_u64();
      if (!block) return block.status();
      return Payload{
          VoteRequest{static_cast<AccessKind>(access.value()), block.value()}};
    }
    case Tag::kVoteReply: {
      auto version = r.get_u64();
      if (!version) return version.status();
      auto weight = r.get_u32();
      if (!weight) return weight.status();
      return Payload{VoteReply{version.value(), weight.value()}};
    }
    case Tag::kBlockFetchRequest: {
      auto block = r.get_u64();
      if (!block) return block.status();
      return Payload{BlockFetchRequest{block.value()}};
    }
    case Tag::kBlockFetchReply: {
      auto version = r.get_u64();
      if (!version) return version.status();
      auto data = get_block_data(r);
      if (!data) return data.status();
      return Payload{BlockFetchReply{version.value(), std::move(data).value()}};
    }
    case Tag::kBlockUpdate:
      return ok_payload(get_block_update(r));
    case Tag::kWriteAllRequest: {
      WriteAllRequest m;
      auto block = r.get_u64();
      if (!block) return block.status();
      m.block = block.value();
      auto version = r.get_u64();
      if (!version) return version.status();
      m.version = version.value();
      auto data = get_block_data(r);
      if (!data) return data.status();
      m.data = std::move(data).value();
      auto set = get_site_set(r);
      if (!set) return set.status();
      m.was_available = std::move(set).value();
      return Payload{std::move(m)};
    }
    case Tag::kWriteAllAck:
      return Payload{WriteAllAck{}};
    case Tag::kStateInquiry:
      return Payload{StateInquiry{}};
    case Tag::kStateInfo: {
      auto state = r.get_u8();
      if (!state) return state.status();
      if (state.value() > 2) return errors::protocol("bad site state");
      auto total = r.get_u64();
      if (!total) return total.status();
      auto set = get_site_set(r);
      if (!set) return set.status();
      return Payload{StateInfo{static_cast<SiteState>(state.value()),
                               total.value(), std::move(set).value()}};
    }
    case Tag::kRepairRequest: {
      auto versions = VersionVector::decode(r);
      if (!versions) return versions.status();
      return Payload{RepairRequest{std::move(versions).value()}};
    }
    case Tag::kRepairReply: {
      RepairReply m;
      auto versions = VersionVector::decode(r);
      if (!versions) return versions.status();
      m.versions = std::move(versions).value();
      auto count = r.get_u32();
      if (!count) return count.status();
      m.blocks.reserve(count.value());
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto block = get_block_update(r);
        if (!block) return block.status();
        m.blocks.push_back(std::move(block).value());
      }
      return Payload{std::move(m)};
    }
    case Tag::kWasAvailableUpdate: {
      auto set = get_site_set(r);
      if (!set) return set.status();
      auto replace = r.get_bool();
      if (!replace) return replace.status();
      return Payload{
          WasAvailableUpdate{std::move(set).value(), replace.value()}};
    }
    case Tag::kWasAvailableAck:
      return Payload{WasAvailableAck{}};
    case Tag::kClientReadRequest: {
      auto block = r.get_u64();
      if (!block) return block.status();
      return Payload{ClientReadRequest{block.value()}};
    }
    case Tag::kClientReadReply: {
      auto code = r.get_u8();
      if (!code) return code.status();
      auto data = get_block_data(r);
      if (!data) return data.status();
      return Payload{ClientReadReply{code.value(), std::move(data).value()}};
    }
    case Tag::kClientWriteRequest: {
      auto block = r.get_u64();
      if (!block) return block.status();
      auto data = get_block_data(r);
      if (!data) return data.status();
      return Payload{
          ClientWriteRequest{block.value(), std::move(data).value()}};
    }
    case Tag::kClientWriteReply: {
      auto code = r.get_u8();
      if (!code) return code.status();
      return Payload{ClientWriteReply{code.value()}};
    }
    case Tag::kDeviceInfoRequest:
      return Payload{DeviceInfoRequest{}};
    case Tag::kDeviceInfoReply: {
      auto count = r.get_u64();
      if (!count) return count.status();
      auto size = r.get_u64();
      if (!size) return size.status();
      return Payload{DeviceInfoReply{count.value(), size.value()}};
    }
    case Tag::kErrorReply: {
      auto code = r.get_u8();
      if (!code) return code.status();
      auto text = r.get_string();
      if (!text) return text.status();
      return Payload{ErrorReply{code.value(), std::move(text).value()}};
    }
    case Tag::kMultiBlockReadRequest: {
      auto first = r.get_u64();
      if (!first) return first.status();
      auto count = r.get_u32();
      if (!count) return count.status();
      return Payload{MultiBlockReadRequest{first.value(), count.value()}};
    }
    case Tag::kMultiBlockReadReply: {
      auto code = r.get_u8();
      if (!code) return code.status();
      auto data = get_block_data(r);
      if (!data) return data.status();
      return Payload{
          MultiBlockReadReply{code.value(), std::move(data).value()}};
    }
    case Tag::kMultiBlockWriteRequest: {
      auto first = r.get_u64();
      if (!first) return first.status();
      auto data = get_block_data(r);
      if (!data) return data.status();
      return Payload{
          MultiBlockWriteRequest{first.value(), std::move(data).value()}};
    }
    case Tag::kMultiBlockWriteAck: {
      auto code = r.get_u8();
      if (!code) return code.status();
      return Payload{MultiBlockWriteAck{code.value()}};
    }
    case Tag::kRangeVoteRequest: {
      auto access = r.get_u8();
      if (!access) return access.status();
      if (access.value() > 1) return errors::protocol("bad access kind");
      auto first = r.get_u64();
      if (!first) return first.status();
      auto count = r.get_u32();
      if (!count) return count.status();
      return Payload{RangeVoteRequest{static_cast<AccessKind>(access.value()),
                                      first.value(), count.value()}};
    }
    case Tag::kRangeVoteReply: {
      auto weight = r.get_u32();
      if (!weight) return weight.status();
      auto versions = r.get_u64_vector();
      if (!versions) return versions.status();
      return Payload{
          RangeVoteReply{weight.value(), std::move(versions).value()}};
    }
    case Tag::kBatchFetchRequest: {
      auto blocks = r.get_u64_vector();
      if (!blocks) return blocks.status();
      return Payload{BatchFetchRequest{std::move(blocks).value()}};
    }
    case Tag::kBatchFetchReply: {
      BatchFetchReply m;
      auto count = r.get_u32();
      if (!count) return count.status();
      m.updates.reserve(std::min<std::uint32_t>(count.value(), 1024));
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto update = get_block_update(r);
        if (!update) return update.status();
        m.updates.push_back(std::move(update).value());
      }
      return Payload{std::move(m)};
    }
    case Tag::kBatchWriteRequest: {
      BatchWriteRequest m;
      auto count = r.get_u32();
      if (!count) return count.status();
      m.updates.reserve(std::min<std::uint32_t>(count.value(), 1024));
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto update = get_block_update(r);
        if (!update) return update.status();
        m.updates.push_back(std::move(update).value());
      }
      auto set = get_site_set(r);
      if (!set) return set.status();
      m.was_available = std::move(set).value();
      return Payload{std::move(m)};
    }
    case Tag::kDigestRequest: {
      auto first = r.get_u64();
      if (!first) return first.status();
      auto count = r.get_u32();
      if (!count) return count.status();
      return Payload{DigestRequest{first.value(), count.value()}};
    }
    case Tag::kDigestReply: {
      DigestReply m;
      auto first = r.get_u64();
      if (!first) return first.status();
      m.first = first.value();
      auto versions = r.get_u64_vector();
      if (!versions) return versions.status();
      m.versions = std::move(versions).value();
      auto count = r.get_u32();
      if (!count) return count.status();
      if (count.value() != m.versions.size()) {
        return errors::protocol("digest reply vectors are not parallel");
      }
      m.digests.reserve(std::min<std::uint32_t>(count.value(), 4096));
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto digest = r.get_u32();
        if (!digest) return digest.status();
        m.digests.push_back(digest.value());
      }
      return Payload{std::move(m)};
    }
  }
  return errors::protocol("unknown message tag");
}

}  // namespace

const char* site_state_name(SiteState state) noexcept {
  switch (state) {
    case SiteState::kFailed:
      return "failed";
    case SiteState::kComatose:
      return "comatose";
    case SiteState::kAvailable:
      return "available";
  }
  return "unknown";
}

const char* Message::name() const noexcept {
  struct Namer {
    const char* operator()(const VoteRequest&) const { return "vote-request"; }
    const char* operator()(const VoteReply&) const { return "vote-reply"; }
    const char* operator()(const BlockFetchRequest&) const {
      return "block-fetch-request";
    }
    const char* operator()(const BlockFetchReply&) const {
      return "block-fetch-reply";
    }
    const char* operator()(const BlockUpdate&) const { return "block-update"; }
    const char* operator()(const WriteAllRequest&) const {
      return "write-all-request";
    }
    const char* operator()(const WriteAllAck&) const { return "write-all-ack"; }
    const char* operator()(const StateInquiry&) const { return "state-inquiry"; }
    const char* operator()(const StateInfo&) const { return "state-info"; }
    const char* operator()(const RepairRequest&) const {
      return "repair-request";
    }
    const char* operator()(const RepairReply&) const { return "repair-reply"; }
    const char* operator()(const WasAvailableUpdate&) const {
      return "was-available-update";
    }
    const char* operator()(const WasAvailableAck&) const {
      return "was-available-ack";
    }
    const char* operator()(const ClientReadRequest&) const {
      return "client-read-request";
    }
    const char* operator()(const ClientReadReply&) const {
      return "client-read-reply";
    }
    const char* operator()(const ClientWriteRequest&) const {
      return "client-write-request";
    }
    const char* operator()(const ClientWriteReply&) const {
      return "client-write-reply";
    }
    const char* operator()(const DeviceInfoRequest&) const {
      return "device-info-request";
    }
    const char* operator()(const DeviceInfoReply&) const {
      return "device-info-reply";
    }
    const char* operator()(const ErrorReply&) const { return "error-reply"; }
    const char* operator()(const MultiBlockReadRequest&) const {
      return "multi-block-read-request";
    }
    const char* operator()(const MultiBlockReadReply&) const {
      return "multi-block-read-reply";
    }
    const char* operator()(const MultiBlockWriteRequest&) const {
      return "multi-block-write-request";
    }
    const char* operator()(const MultiBlockWriteAck&) const {
      return "multi-block-write-ack";
    }
    const char* operator()(const RangeVoteRequest&) const {
      return "range-vote-request";
    }
    const char* operator()(const RangeVoteReply&) const {
      return "range-vote-reply";
    }
    const char* operator()(const BatchFetchRequest&) const {
      return "batch-fetch-request";
    }
    const char* operator()(const BatchFetchReply&) const {
      return "batch-fetch-reply";
    }
    const char* operator()(const BatchWriteRequest&) const {
      return "batch-write-request";
    }
    const char* operator()(const DigestRequest&) const {
      return "digest-request";
    }
    const char* operator()(const DigestReply&) const { return "digest-reply"; }
  };
  return std::visit(Namer{}, payload);
}

std::vector<std::byte> Message::encode() const {
  BufferWriter writer;
  writer.put_u32(from);
  std::visit(Encoder{writer}, payload);
  return std::move(writer).take();
}

Result<Message> Message::decode(std::span<const std::byte> raw) {
  BufferReader reader(raw);
  auto from = reader.get_u32();
  if (!from) return from.status();
  auto tag = reader.get_u8();
  if (!tag) return tag.status();
  if (tag.value() > static_cast<std::uint8_t>(Tag::kDigestReply)) {
    return errors::protocol("unknown message tag " +
                            std::to_string(tag.value()));
  }
  auto payload = decode_payload(static_cast<Tag>(tag.value()), reader);
  if (!payload) return payload.status();
  if (!reader.exhausted()) {
    return errors::protocol("trailing bytes after message payload");
  }
  return Message{from.value(), std::move(payload).value()};
}

Message make_error(SiteId from, const Status& status) {
  return Message{from, ErrorReply{static_cast<std::uint8_t>(status.code()),
                                  status.message()}};
}

}  // namespace reldev::net
