#include "reldev/net/traffic.hpp"

namespace reldev::net {

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kRecovery:
      return "recovery";
    case OpKind::kOther:
      return "other";
  }
  return "unknown";
}

}  // namespace reldev::net
