// The transport abstraction the consistency engines are written against.
// Request/reply is synchronous — matching the paper's pseudocode, which
// collects votes or acknowledgements before proceeding — and the same
// engine code runs over the in-process transport (tests, simulation) and
// TCP (real deployment).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "reldev/net/message.hpp"
#include "reldev/net/traffic.hpp"
#include "reldev/util/result.hpp"

namespace reldev::net {

/// Server-side dispatch: a bound site receives requests here.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  /// Handle a request and produce the reply.
  virtual Message handle(const Message& request) = 0;
  /// Handle a message that expects no reply (e.g. NAC write push).
  virtual void handle_oneway(const Message& message) = 0;
};

/// A (site, reply) pair from a scatter-gather call.
using GatherReply = std::pair<SiteId, Message>;

/// Optional predicate over the replies gathered so far: return true once
/// enough have arrived (e.g. a read quorum by weight) and the gather
/// returns immediately. Stragglers still complete in the background — the
/// request already went out to everyone, so their replies are still
/// transmitted and must still be metered — but they are not appended to
/// the returned vector. Transports may invoke the predicate from the
/// gathering thread while holding an internal lock: it must be fast and
/// must not call back into the transport.
using EarlyStop = std::function<bool(const std::vector<GatherReply>&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Request/reply to one site. kUnavailable if it cannot be reached.
  [[nodiscard]] virtual Result<Message> call(SiteId from, SiteId to,
                               const Message& request) = 0;

  /// Fire-and-forget to one site. Delivery to a down site is silently
  /// dropped (reliable delivery is assumed only between live sites).
  [[nodiscard]] virtual Status send(SiteId from, SiteId to, const Message& message) = 0;

  /// Fire-and-forget to a set of sites (the coordinator excluded by the
  /// caller). One transmission in multicast mode; |to| in unique mode.
  [[nodiscard]] virtual Status multicast(SiteId from, const SiteSet& to,
                           const Message& message) = 0;

  /// Scatter the request to `to`, gather replies until `early_stop` is
  /// satisfied (or from every reachable member when it is null).
  /// Unreachable members are simply absent from the result.
  virtual std::vector<GatherReply> multicast_call(
      SiteId from, const SiteSet& to, const Message& request,
      const EarlyStop& early_stop) = 0;

  /// Full gather: every reachable member's reply.
  std::vector<GatherReply> multicast_call(SiteId from, const SiteSet& to,
                                          const Message& request) {
    return multicast_call(from, to, request, EarlyStop{});
  }
};

}  // namespace reldev::net
