// A TCP message server: accepts connections, reads framed Messages, passes
// them to a MessageHandler, writes the framed reply. This is the process
// boundary of the paper's Figure 1/2 — the "user-state server".
//
// Two execution modes share one interface:
//   * kReactor (default): N event-loop shards (epoll, or io_uring where
//     available) drive non-blocking frame state machines; connections are
//     assigned to shards round-robin and handlers run on a small worker
//     pool. Connection count no longer implies thread count.
//   * kThreadPerConnection: the original blocking design, one thread per
//     accepted socket. Kept as the comparison baseline for
//     bench/server_scale and for debugging (a stuck handler is trivially
//     visible in a thread dump).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "reldev/net/tcp/event_loop.hpp"
#include "reldev/net/tcp/framing.hpp"
#include "reldev/net/transport.hpp"

namespace reldev::net::tcp {

struct ServerOptions {
  enum class Mode : std::uint8_t { kReactor = 0, kThreadPerConnection = 1 };

  Mode mode = Mode::kReactor;
  /// Event-loop shards (reactor mode). 0 = hardware_concurrency.
  std::size_t loop_shards = 0;
  /// Handler worker threads (reactor mode). 0 = max(8, hardware_concurrency):
  /// handlers may block (storage I/O, fan-out to peers), so the floor is
  /// set by acceptable blocking-handler concurrency, not by core count.
  std::size_t handler_threads = 0;
  /// Run handlers directly on the owning loop shard instead of the worker
  /// pool (reactor mode). Only for handlers that never block — a blocking
  /// handler stalls every connection on its shard. Skips two cross-thread
  /// hops per request, which is the right trade for cheap CPU-only
  /// handlers; the default pool is the right one for handlers that do
  /// storage I/O or fan out to peers.
  bool inline_handlers = false;
  /// Preferred loop backend; kIoUring silently falls back to epoll when the
  /// kernel or build lacks it.
  EventLoop::Backend backend = EventLoop::Backend::kEpoll;
  /// Close connections idle at a frame boundary for this long (reactor
  /// mode). Zero disables the idle reaper.
  std::chrono::milliseconds idle_timeout{0};
};

/// Frame counters shared by both server modes. All monotonic except
/// active_connections.
struct ServerCounters {
  /// Frames whose CRC trailer (or magic) failed verification: the request
  /// was rejected before decoding and the connection torn down.
  std::atomic<std::uint64_t> corrupted_frames{0};
  /// Frames rejected for framing-protocol violations (oversized declared
  /// length). Like corrupt frames, these cost the sender its connection.
  std::atomic<std::uint64_t> rejected_frames{0};
  /// Well-formed frames served (decoded and dispatched to the handler).
  std::atomic<std::uint64_t> served_frames{0};
  /// Currently-open connections.
  std::atomic<std::size_t> active_connections{0};
};

class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and dispatches every inbound
  /// request to `handler`. The handler must be thread-safe or internally
  /// serialized; it must outlive the server.
  static Result<std::unique_ptr<TcpServer>> start(std::uint16_t port,
                                                  MessageHandler* handler,
                                                  const ServerOptions& options);
  static Result<std::unique_ptr<TcpServer>> start(std::uint16_t port,
                                                  MessageHandler* handler) {
    return start(port, handler, ServerOptions{});
  }

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] ServerOptions::Mode mode() const noexcept;
  /// The loop backend actually in use (reactor mode; kEpoll in
  /// thread-per-connection mode).
  [[nodiscard]] EventLoop::Backend backend() const noexcept;

  [[nodiscard]] std::uint64_t corrupted_frames() const noexcept {
    return counters_.corrupted_frames.load();
  }
  [[nodiscard]] std::uint64_t rejected_frames() const noexcept {
    return counters_.rejected_frames.load();
  }
  [[nodiscard]] std::uint64_t served_frames() const noexcept {
    return counters_.served_frames.load();
  }
  [[nodiscard]] std::size_t active_connections() const noexcept {
    return counters_.active_connections.load();
  }

  /// Stop accepting, close every connection — including ones mid-request —
  /// and join all threads. Prompt: does not wait for idle peers to go away.
  void stop();

  /// Both server modes, for tests parameterized over execution model.
  class Impl;

 private:
  TcpServer() = default;

  ServerCounters counters_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace reldev::net::tcp
