// A TCP message server: accepts connections, reads framed Messages, passes
// them to a MessageHandler, writes the framed reply. Thread-per-connection;
// suitable for the small replica groups this system targets. This is the
// process boundary of the paper's Figure 1/2 — the "user-state server".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "reldev/net/tcp/framing.hpp"
#include "reldev/net/transport.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::net::tcp {

class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and dispatches every inbound
  /// request to `handler`. The handler must be thread-safe or internally
  /// serialized; it must outlive the server.
  static Result<std::unique_ptr<TcpServer>> start(std::uint16_t port,
                                                  MessageHandler* handler);

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return acceptor_.port(); }

  /// Frames whose CRC trailer (or magic) failed verification: the request
  /// was rejected before decoding and the connection torn down. Exposed so
  /// operators and the chaos tests can see injected corruption being
  /// caught rather than silently decoded.
  [[nodiscard]] std::uint64_t corrupted_frames() const noexcept {
    return corrupted_frames_.load();
  }

  /// Frames rejected for framing-protocol violations (oversized declared
  /// length). Like corrupt frames, these cost the sender its connection.
  [[nodiscard]] std::uint64_t rejected_frames() const noexcept {
    return rejected_frames_.load();
  }

  /// Well-formed frames served (decoded and dispatched to the handler).
  [[nodiscard]] std::uint64_t served_frames() const noexcept {
    return served_frames_.load();
  }

  /// Stop accepting, close all connections, join all threads.
  void stop() RELDEV_EXCLUDES(mutex_);

 private:
  TcpServer(Acceptor acceptor, MessageHandler* handler);
  void accept_loop() RELDEV_EXCLUDES(mutex_);
  void serve_connection(const std::shared_ptr<Socket>& socket);
  /// Join workers whose connections have closed. A worker cannot join
  /// itself, so it parks its id in `finished_` and the accept thread (or
  /// stop()) joins it — keeping the worker map bounded by the number of
  /// *live* connections instead of growing for the server's lifetime.
  void reap_finished() RELDEV_EXCLUDES(mutex_);

  Acceptor acceptor_;
  MessageHandler* handler_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> corrupted_frames_{0};
  std::atomic<std::uint64_t> rejected_frames_{0};
  std::atomic<std::uint64_t> served_frames_{0};
  std::thread accept_thread_;
  Mutex mutex_;
  std::uint64_t next_worker_id_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::map<std::uint64_t, std::thread> workers_ RELDEV_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> finished_ RELDEV_GUARDED_BY(mutex_);
  // Live connection sockets, shut down by stop() so workers blocked in
  // recv() wake up and exit.
  std::map<std::uint64_t, std::shared_ptr<Socket>> connections_
      RELDEV_GUARDED_BY(mutex_);
};

}  // namespace reldev::net::tcp
