// Client side of the TCP message protocol: a channel that sends one framed
// Message and blocks for the framed reply, reconnecting on demand; and a
// Transport implementation that routes per-site over such channels so the
// same protocol engines that run in-process can run across real processes.
//
// Concurrency: a channel keeps a small pool of connections per endpoint, so
// concurrent calls to the same peer each get their own socket instead of
// serializing on one mutex. The transport fans multicasts out over the
// shared FanOut pool and gathers replies as they land; an EarlyStop
// predicate lets a quorum return before the stragglers, whose late replies
// are still metered.
#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "reldev/net/fanout.hpp"
#include "reldev/net/tcp/framing.hpp"
#include "reldev/net/transport.hpp"

namespace reldev::net::tcp {

/// Default per-call deadline: covers connect + request + reply. Generous
/// for a LAN round trip, small enough that a dead peer costs one bounded
/// hiccup rather than an indefinite hang.
inline constexpr std::chrono::milliseconds kDefaultCallTimeout{5000};

/// One logical connection to a server, backed by a pool of sockets so
/// concurrent calls proceed in parallel.
class TcpChannel {
 public:
  TcpChannel(std::string host, std::uint16_t port,
             std::chrono::milliseconds timeout = kDefaultCallTimeout);

  /// Send `request`, wait for the reply, bounded by the channel timeout.
  /// Reconnects and retries ONLY while the request was provably not
  /// delivered (the frame write failed on a stale pooled socket); once the
  /// frame is fully written the request may be executing, so a reply
  /// failure is surfaced instead of replayed — at-most-once per call.
  /// Retrying a possibly-executed request is the caller's decision (see
  /// core::RetryPolicy). Deadline overruns are kUnavailable; a CRC-
  /// rejected reply is the typed kCorruption.
  Result<Message> call(const Message& request);

  /// Drop all idle pooled connections (next calls reconnect). Calls in
  /// flight keep their sockets.
  void disconnect();

  void set_timeout(std::chrono::milliseconds timeout);
  [[nodiscard]] std::chrono::milliseconds timeout() const;

 private:
  /// Pop an idle pooled socket, or connect a fresh one within `remaining`.
  /// `pooled` reports which happened (pooled sockets may be stale).
  Result<Socket> acquire(bool& pooled, std::chrono::milliseconds remaining);
  void release(Socket socket);

  std::string host_;
  std::uint16_t port_;
  mutable std::mutex mutex_;
  std::chrono::milliseconds timeout_;
  std::vector<Socket> idle_;
};

/// Transport over per-site TCP channels. Always unique addressing: real
/// point-to-point links have no broadcast medium, which is exactly §5.2's
/// setting. One-way sends are implemented as calls whose reply is
/// discarded, preserving the engines' semantics (TCP servers always reply).
class TcpPeerTransport final : public Transport {
 public:
  TcpPeerTransport() = default;

  /// Waits for every in-flight fan-out task (including early-stop
  /// stragglers) before destroying the channels they use.
  ~TcpPeerTransport() override;

  void set_endpoint(SiteId site, const std::string& host, std::uint16_t port);
  void remove_endpoint(SiteId site);

  /// Per-call deadline applied to every channel (existing and future).
  void set_call_timeout(std::chrono::milliseconds timeout);

  /// The meter must outlive this transport: straggler replies are counted
  /// from worker threads until the destructor has drained them.
  void set_traffic_meter(TrafficMeter* meter) noexcept { meter_ = meter; }

  using Transport::multicast_call;

  Result<Message> call(SiteId from, SiteId to, const Message& request) override;
  Status send(SiteId from, SiteId to, const Message& message) override;
  Status multicast(SiteId from, const SiteSet& to,
                   const Message& message) override;
  std::vector<GatherReply> multicast_call(SiteId from, const SiteSet& to,
                                          const Message& request,
                                          const EarlyStop& early_stop) override;

 private:
  std::shared_ptr<TcpChannel> channel(SiteId site);
  void count(std::uint64_t transmissions) const;
  /// Channels for every member of `to` except `from` that has an endpoint.
  std::vector<std::pair<SiteId, std::shared_ptr<TcpChannel>>> channels_for(
      SiteId from, const SiteSet& to);

  std::mutex mutex_;
  std::map<SiteId, std::shared_ptr<TcpChannel>> channels_;
  std::chrono::milliseconds call_timeout_{kDefaultCallTimeout};
  TrafficMeter* meter_ = nullptr;

  // Outstanding fan-out tasks; the destructor blocks until zero so no task
  // can touch a dead channel or meter.
  std::mutex outstanding_mutex_;
  std::condition_variable outstanding_cv_;
  std::size_t outstanding_ = 0;
};

}  // namespace reldev::net::tcp
