// Client side of the TCP message protocol: a channel that sends one framed
// Message and blocks for the framed reply, reconnecting on demand; and a
// Transport implementation that routes per-site over such channels so the
// same protocol engines that run in-process can run across real processes.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "reldev/net/tcp/framing.hpp"
#include "reldev/net/transport.hpp"

namespace reldev::net::tcp {

/// One logical connection to a server; call() is serialized internally.
class TcpChannel {
 public:
  TcpChannel(std::string host, std::uint16_t port);

  /// Send `request`, wait for the reply. Reconnects once if the cached
  /// connection has gone away (server restart).
  Result<Message> call(const Message& request);

  /// Drop the cached connection (next call reconnects).
  void disconnect();

 private:
  Status ensure_connected();

  std::string host_;
  std::uint16_t port_;
  std::mutex mutex_;
  std::optional<Socket> socket_;
};

/// Transport over per-site TCP channels. Always unique addressing: real
/// point-to-point links have no broadcast medium, which is exactly §5.2's
/// setting. One-way sends are implemented as calls whose reply is
/// discarded, preserving the engines' semantics (TCP servers always reply).
class TcpPeerTransport final : public Transport {
 public:
  TcpPeerTransport() = default;

  void set_endpoint(SiteId site, const std::string& host, std::uint16_t port);
  void remove_endpoint(SiteId site);

  void set_traffic_meter(TrafficMeter* meter) noexcept { meter_ = meter; }

  Result<Message> call(SiteId from, SiteId to, const Message& request) override;
  Status send(SiteId from, SiteId to, const Message& message) override;
  Status multicast(SiteId from, const SiteSet& to,
                   const Message& message) override;
  std::vector<GatherReply> multicast_call(SiteId from, const SiteSet& to,
                                          const Message& request) override;

 private:
  TcpChannel* channel(SiteId site);
  void count(std::uint64_t transmissions) const;

  std::mutex mutex_;
  std::map<SiteId, std::unique_ptr<TcpChannel>> channels_;
  TrafficMeter* meter_ = nullptr;
};

}  // namespace reldev::net::tcp
