// Client side of the TCP message protocol: a channel that sends one framed
// Message and blocks for the framed reply, reconnecting on demand; and a
// Transport implementation that routes per-site over such channels so the
// same protocol engines that run in-process can run across real processes.
//
// Concurrency: a channel keeps a small pool of connections per endpoint, so
// concurrent calls to the same peer each get their own socket instead of
// serializing on one mutex. The transport fans multicasts out over the
// shared FanOut pool and gathers replies as they land; an EarlyStop
// predicate lets a quorum return before the stragglers, whose late replies
// are still metered.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "reldev/net/fanout.hpp"
#include "reldev/net/tcp/framing.hpp"
#include "reldev/net/transport.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::net::tcp {

/// Default per-call deadline: covers connect + request + reply. Generous
/// for a LAN round trip, small enough that a dead peer costs one bounded
/// hiccup rather than an indefinite hang.
inline constexpr std::chrono::milliseconds kDefaultCallTimeout{5000};

/// Bounds on the per-endpoint idle-connection pool.
struct PoolOptions {
  /// Idle sockets kept per endpoint; releases beyond the cap close the
  /// socket. Enough for the fan-out concurrency a small replica group
  /// generates.
  std::size_t max_idle = 8;
  /// Idle sockets older than this are evicted instead of reused — a
  /// connection parked across a server restart or NAT timeout fails its
  /// first write anyway, so don't let them pile up. Zero disables age
  /// eviction.
  std::chrono::milliseconds max_idle_age{30000};
};

/// One logical connection to a server, backed by a pool of sockets so
/// concurrent calls proceed in parallel.
class TcpChannel {
 public:
  TcpChannel(std::string host, std::uint16_t port,
             std::chrono::milliseconds timeout = kDefaultCallTimeout,
             const PoolOptions& pool = PoolOptions{});

  /// Send `request`, wait for the reply, bounded by the channel timeout.
  /// Reconnects and retries ONLY while the request was provably not
  /// delivered (the frame write failed on a stale pooled socket); once the
  /// frame is fully written the request may be executing, so a reply
  /// failure is surfaced instead of replayed — at-most-once per call.
  /// Retrying a possibly-executed request is the caller's decision (see
  /// core::RetryPolicy). Deadline overruns are kUnavailable; a CRC-
  /// rejected reply is the typed kCorruption.
  [[nodiscard]] Result<Message> call(const Message& request);

  /// Drop all idle pooled connections (next calls reconnect). Calls in
  /// flight keep their sockets.
  void disconnect() RELDEV_EXCLUDES(mutex_);

  void set_timeout(std::chrono::milliseconds timeout) RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] std::chrono::milliseconds timeout() const
      RELDEV_EXCLUDES(mutex_);

  /// Replace the pool bounds. Applies to future acquire/release decisions;
  /// surplus idle sockets are trimmed immediately.
  void set_pool_options(const PoolOptions& pool) RELDEV_EXCLUDES(mutex_);

  /// Calls served by a pooled socket vs. a fresh connect. A stale pooled
  /// socket that fails and forces a reconnect counts as both a hit (it was
  /// tried) and a miss (the connect that replaced it).
  [[nodiscard]] std::uint64_t pool_hits() const noexcept {
    return pool_hits_.load();
  }
  [[nodiscard]] std::uint64_t pool_misses() const noexcept {
    return pool_misses_.load();
  }
  /// Idle sockets currently parked.
  [[nodiscard]] std::size_t idle_connections() const RELDEV_EXCLUDES(mutex_);

 private:
  /// Pop an idle pooled socket, or connect a fresh one within `remaining`.
  /// `pooled` reports which happened (pooled sockets may be stale). The
  /// connect itself runs outside the lock — only the pool is guarded.
  [[nodiscard]] Result<Socket> acquire(bool& pooled, std::chrono::milliseconds remaining)
      RELDEV_EXCLUDES(mutex_);
  void release(Socket socket) RELDEV_EXCLUDES(mutex_);

  /// An idle pooled socket and when it was parked (for age eviction).
  struct IdleSocket {
    Socket socket;
    std::chrono::steady_clock::time_point since;
  };

  /// Drop idle entries older than the age bound or beyond the size cap.
  void evict_locked() RELDEV_REQUIRES(mutex_);

  std::string host_;
  std::uint16_t port_;
  mutable Mutex mutex_{"TcpChannel.pool"};
  std::chrono::milliseconds timeout_ RELDEV_GUARDED_BY(mutex_);
  PoolOptions pool_ RELDEV_GUARDED_BY(mutex_);
  std::vector<IdleSocket> idle_ RELDEV_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> pool_hits_{0};
  std::atomic<std::uint64_t> pool_misses_{0};
};

/// Transport over per-site TCP channels. Always unique addressing: real
/// point-to-point links have no broadcast medium, which is exactly §5.2's
/// setting. One-way sends are implemented as calls whose reply is
/// discarded, preserving the engines' semantics (TCP servers always reply).
class TcpPeerTransport final : public Transport {
 public:
  TcpPeerTransport() = default;

  /// Waits for every in-flight fan-out task (including early-stop
  /// stragglers) before destroying the channels they use.
  ~TcpPeerTransport() override;

  void set_endpoint(SiteId site, const std::string& host, std::uint16_t port)
      RELDEV_EXCLUDES(mutex_);
  void remove_endpoint(SiteId site) RELDEV_EXCLUDES(mutex_);

  /// Per-call deadline applied to every channel (existing and future).
  void set_call_timeout(std::chrono::milliseconds timeout)
      RELDEV_EXCLUDES(mutex_);

  /// Pool bounds applied to every channel (existing and future).
  void set_pool_options(const PoolOptions& pool) RELDEV_EXCLUDES(mutex_);

  /// Pool hit/miss totals aggregated across all per-site channels.
  [[nodiscard]] std::uint64_t pool_hits() const RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t pool_misses() const RELDEV_EXCLUDES(mutex_);

  /// The meter must outlive this transport: straggler replies are counted
  /// from worker threads until the destructor has drained them. Atomic —
  /// fan-out workers read it concurrently with this setter.
  void set_traffic_meter(TrafficMeter* meter) noexcept {
    meter_.store(meter, std::memory_order_release);
  }

  using Transport::multicast_call;

  [[nodiscard]] Result<Message> call(SiteId from, SiteId to, const Message& request) override;
  [[nodiscard]] Status send(SiteId from, SiteId to, const Message& message) override;
  [[nodiscard]] Status multicast(SiteId from, const SiteSet& to,
                   const Message& message) override;
  std::vector<GatherReply> multicast_call(SiteId from, const SiteSet& to,
                                          const Message& request,
                                          const EarlyStop& early_stop) override;

 private:
  std::shared_ptr<TcpChannel> channel(SiteId site) RELDEV_EXCLUDES(mutex_);
  void count(std::uint64_t transmissions) const;
  /// Channels for every member of `to` except `from` that has an endpoint.
  std::vector<std::pair<SiteId, std::shared_ptr<TcpChannel>>> channels_for(
      SiteId from, const SiteSet& to) RELDEV_EXCLUDES(mutex_);

  mutable Mutex mutex_{"TcpPeerTransport.mutex"};
  std::map<SiteId, std::shared_ptr<TcpChannel>> channels_
      RELDEV_GUARDED_BY(mutex_);
  std::chrono::milliseconds call_timeout_ RELDEV_GUARDED_BY(mutex_){
      kDefaultCallTimeout};
  PoolOptions pool_options_ RELDEV_GUARDED_BY(mutex_);
  std::atomic<TrafficMeter*> meter_{nullptr};

  // Outstanding fan-out tasks; the destructor blocks until zero so no task
  // can touch a dead channel or meter.
  Mutex outstanding_mutex_ RELDEV_ACQUIRED_AFTER(mutex_){"TcpPeerTransport.outstanding"};
  CondVar outstanding_cv_;
  std::size_t outstanding_ RELDEV_GUARDED_BY(outstanding_mutex_) = 0;
};

}  // namespace reldev::net::tcp
