// Message framing on a stream socket: [magic u32][length u32][payload]
// [crc u32]. The CRC-32C trailer covers the prefix AND the payload, so
// corruption anywhere in the frame — including a garbled length — is
// rejected as kCorruption before any decoding happens, instead of being
// decoded into garbage.
#pragma once

#include <vector>

#include "reldev/net/tcp/socket.hpp"
#include "reldev/util/result.hpp"

namespace reldev::net::tcp {

/// Upper bound on a frame payload; far above any block size we ship but
/// small enough to stop a corrupt length field from allocating gigabytes.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

[[nodiscard]] Status write_frame(Socket& socket, std::span<const std::byte> payload);

/// Reads one frame. kUnavailable on orderly EOF at a frame boundary;
/// kCorruption on bad magic/CRC; kProtocol on oversized length.
[[nodiscard]] Result<std::vector<std::byte>> read_frame(Socket& socket);

}  // namespace reldev::net::tcp
