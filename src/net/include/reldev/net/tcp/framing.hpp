// Message framing on a stream socket: [magic u32][length u32][payload]
// [crc u32]. The CRC-32C trailer covers the prefix AND the payload, so
// corruption anywhere in the frame — including a garbled length — is
// rejected as kCorruption before any decoding happens, instead of being
// decoded into garbage.
//
// Two consumption styles share the same layout helpers: the blocking
// read_frame/write_frame pair (client side, thread-per-connection servers)
// and the incremental prefix/payload helpers the event-loop reactor drives
// from readiness callbacks (prefix parsed as soon as its 8 bytes are in,
// CRC verified in place on the arena buffer the payload landed in).
#pragma once

#include <array>
#include <vector>

#include "reldev/net/tcp/socket.hpp"
#include "reldev/util/result.hpp"

namespace reldev::net::tcp {

/// Upper bound on a frame payload; far above any block size we ship but
/// small enough to stop a corrupt length field from allocating gigabytes.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

inline constexpr std::size_t kFramePrefixSize = 8;   // magic + length
inline constexpr std::size_t kFrameTrailerSize = 4;  // CRC-32C

/// Serialized [magic][length] prefix for a payload of `payload_size` bytes.
[[nodiscard]] std::array<std::byte, kFramePrefixSize> encode_frame_prefix(
    std::size_t payload_size);

/// Validates a received prefix and returns the declared payload length.
/// kCorruption on bad magic; kProtocol on a length above kMaxFramePayload.
[[nodiscard]] Result<std::uint32_t> parse_frame_prefix(
    std::span<const std::byte> prefix);

/// The CRC-32C trailer value for a frame with this prefix and payload.
[[nodiscard]] std::uint32_t frame_crc(std::span<const std::byte> prefix,
                                      std::span<const std::byte> payload);

/// Decodes the little-endian CRC trailer (exactly kFrameTrailerSize bytes).
[[nodiscard]] std::uint32_t decode_frame_trailer(
    std::span<const std::byte> trailer);

[[nodiscard]] Status write_frame(Socket& socket, std::span<const std::byte> payload);

/// Reads one frame. kUnavailable on orderly EOF at a frame boundary;
/// kCorruption on bad magic/CRC; kProtocol on oversized length.
[[nodiscard]] Result<std::vector<std::byte>> read_frame(Socket& socket);

}  // namespace reldev::net::tcp
