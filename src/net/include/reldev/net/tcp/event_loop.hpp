// EventLoop: the non-blocking I/O core under the reactor server. One loop
// owns one OS readiness/completion facility (an epoll instance, or an
// io_uring when built and supported) and runs on exactly one thread; the
// server shards connections across N loops so the hot path scales with
// cores instead of with connection count.
//
// Threading contract:
//   * run() is called once, on the thread that will own the loop;
//   * stop() and post() are safe from any thread;
//   * every other method — the async_* operations, cancel(), timers — is
//     loop-thread-only (call them from a posted task or a completion
//     handler). This keeps all per-fd state unsynchronized by construction;
//     the only locks in a loop guard the cross-thread task queue.
//
// Operation contract: at most ONE outstanding read-class operation (readv
// or accept) and ONE outstanding write-class operation per fd. Operations
// are one-shot: the handler fires exactly once with the syscall result
// (bytes transferred, 0 for EOF, or an errno-derived Status) and must be
// re-armed for more I/O. Short reads/writes are the caller's to continue —
// exactly the state-machine shape the framing layer drives. cancel(fd)
// drops pending operations WITHOUT invoking their handlers; the caller
// closes the fd itself afterwards. Every fd that ever had an operation
// armed MUST be cancel()ed (on the loop thread) before it is closed, even
// when no operation is pending: backends keep per-fd readiness state —
// epoll a persistent edge-triggered registration — that only cancel()
// releases, and a closed-then-reused fd number would inherit it.
#pragma once

#include <sys/uio.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "reldev/util/result.hpp"

namespace reldev::net::tcp {

class EventLoop {
 public:
  enum class Backend : std::uint8_t { kEpoll = 0, kIoUring = 1 };

  /// Completion of a read/write: bytes transferred (0 = EOF on reads) or
  /// the errno-derived Status. Handlers run on the loop thread.
  using IoHandler = std::function<void(Result<std::size_t>)>;
  /// Completion of an accept: the new connection's fd (already
  /// non-blocking) or the errno-derived Status.
  using AcceptHandler = std::function<void(Result<int>)>;
  using Task = std::function<void()>;
  using TimerId = std::uint64_t;

  /// Builds a loop on `preferred`. kIoUring falls back to epoll — with a
  /// warning, never an error — when the backend was compiled out
  /// (RELDEV_IO_URING=OFF) or the running kernel lacks the features we
  /// need; epoll is the portable default. Check backend() for the result.
  [[nodiscard]] static Result<std::unique_ptr<EventLoop>> create(
      Backend preferred = Backend::kEpoll);

  /// True when the io_uring backend is compiled in AND the running kernel
  /// accepts io_uring_setup with the features we rely on (FAST_POLL,
  /// EXT_ARG). Probed once per process.
  [[nodiscard]] static bool io_uring_available();

  virtual ~EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] virtual Backend backend() const noexcept = 0;

  /// Process events until stop(). Call once, on the owning thread.
  virtual void run() = 0;

  /// Make run() return soon. Safe from any thread, and idempotent. Pending
  /// operations and posted tasks are dropped (their handlers never fire);
  /// the server cancels I/O explicitly before stopping its loops.
  virtual void stop() = 0;

  /// Run `task` on the loop thread, soon. Safe from any thread. Tasks
  /// posted after stop() are silently dropped.
  virtual void post(Task task) = 0;

  // --- loop-thread-only from here on ---------------------------------------

  /// Arm a one-shot accept on a non-blocking listening fd.
  virtual void async_accept(int listen_fd, AcceptHandler on_accept) = 0;

  /// Arm a one-shot scatter read / gather write. At most 4 iovecs; the
  /// buffers must stay alive until the handler fires (the iovec array
  /// itself is copied). A handler may re-arm from within its own callback.
  virtual void async_readv(int fd, std::span<const iovec> iov,
                           IoHandler on_done) = 0;
  virtual void async_writev(int fd, std::span<const iovec> iov,
                            IoHandler on_done) = 0;

  /// Drop any pending operations on `fd` — their handlers never fire —
  /// and release the loop's per-fd readiness state. The fd itself is
  /// untouched (close it after cancelling). Required before closing any
  /// fd this loop has ever armed an operation on, pending or not.
  virtual void cancel(int fd) = 0;

  /// One-shot timer on the loop thread. Cancelling an already-fired id is
  /// a harmless no-op.
  virtual TimerId add_timer(std::chrono::milliseconds delay, Task task) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Largest iovec count an async_readv/async_writev accepts.
  static constexpr std::size_t kMaxIov = 4;

 protected:
  EventLoop() = default;
};

}  // namespace reldev::net::tcp
