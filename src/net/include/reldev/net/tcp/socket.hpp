// Thin RAII wrappers over POSIX TCP sockets: a connected stream socket and
// a listening acceptor. Blocking I/O with EINTR handling; all failures are
// reported as Status values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "reldev/util/result.hpp"

namespace reldev::net::tcp {

/// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to host:port (IPv4 dotted quad or "localhost").
  static Result<Socket> connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write the whole buffer or fail.
  Status write_all(std::span<const std::byte> data);

  /// Read exactly `data.size()` bytes or fail (EOF mid-read is an error;
  /// EOF before the first byte is reported as kUnavailable so callers can
  /// treat orderly peer shutdown distinctly).
  Status read_exact(std::span<std::byte> data);

  /// Shut down both directions without closing the descriptor: wakes any
  /// thread blocked in read on this socket. Safe to call concurrently with
  /// reads from another thread.
  void shutdown() noexcept;

  /// Shut down both directions (wakes a peer blocked in read) and close.
  void close();

 private:
  int fd_ = -1;
};

/// A listening socket. Move-only; closes on destruction.
class Acceptor {
 public:
  Acceptor() = default;
  ~Acceptor();
  Acceptor(Acceptor&& other) noexcept;
  Acceptor& operator=(Acceptor&& other) noexcept;
  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Listen on 127.0.0.1:`port`; port 0 picks an ephemeral port, readable
  /// via port() afterwards.
  static Result<Acceptor> listen(std::uint16_t port);

  /// Block until a connection arrives. Fails with kUnavailable after
  /// close() is called from another thread.
  Result<Socket> accept();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace reldev::net::tcp
