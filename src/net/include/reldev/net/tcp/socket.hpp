// Thin RAII wrappers over POSIX TCP sockets: a connected stream socket and
// a listening acceptor. Blocking I/O with EINTR handling; all failures are
// reported as Status values.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "reldev/util/result.hpp"

namespace reldev::net::tcp {

/// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to host:port (IPv4 dotted quad or "localhost"). With a
  /// timeout, a peer that neither accepts nor refuses (dead host, dropped
  /// packets) costs one bounded wait reported as kUnavailable — the same
  /// code as a refused connection, preserving fail-stop semantics.
  static Result<Socket> connect(
      const std::string& host, std::uint16_t port,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Bound every subsequent recv/send. A recv that exceeds the bound fails
  /// with kUnavailable ("timed out") instead of hanging; zero or negative
  /// durations clear the bound.
  void set_recv_timeout(std::chrono::milliseconds timeout) noexcept;
  void set_send_timeout(std::chrono::milliseconds timeout) noexcept;

  /// Switch O_NONBLOCK on or off. Event-loop-owned sockets run non-blocking
  /// (all waiting happens in the loop, never in a syscall); the blocking
  /// read/write helpers below must not be used while non-blocking is set.
  [[nodiscard]] Status set_nonblocking(bool enabled);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write the whole buffer or fail.
  [[nodiscard]] Status write_all(std::span<const std::byte> data);

  /// Read exactly `data.size()` bytes or fail (EOF mid-read is an error;
  /// EOF before the first byte is reported as kUnavailable so callers can
  /// treat orderly peer shutdown distinctly).
  [[nodiscard]] Status read_exact(std::span<std::byte> data);

  /// Shut down both directions without closing the descriptor: wakes any
  /// thread blocked in read on this socket. Safe to call concurrently with
  /// reads from another thread.
  void shutdown() noexcept;

  /// Shut down both directions (wakes a peer blocked in read) and close.
  void close();

 private:
  int fd_ = -1;
};

/// A listening socket. Move-only; closes on destruction.
class Acceptor {
 public:
  Acceptor() = default;
  ~Acceptor();
  Acceptor(Acceptor&& other) noexcept;
  Acceptor& operator=(Acceptor&& other) noexcept;
  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Listen on 127.0.0.1:`port`; port 0 picks an ephemeral port, readable
  /// via port() afterwards.
  static Result<Acceptor> listen(std::uint16_t port);

  /// Block until a connection arrives. Fails with kUnavailable after
  /// shutdown() is called from another thread.
  [[nodiscard]] Result<Socket> accept();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Switch O_NONBLOCK on the listening descriptor (reactor accept path:
  /// the loop accepts on readiness instead of blocking in accept()).
  [[nodiscard]] Status set_nonblocking(bool enabled);

  /// Wake a thread blocked in accept() without invalidating the
  /// descriptor. Safe to call concurrently with accept(); close() is not —
  /// it must wait until the accepting thread has been joined.
  void shutdown() noexcept;

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace reldev::net::tcp
