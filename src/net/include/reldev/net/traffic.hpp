// Traffic accounting at the paper's granularity (§5): high-level
// transmissions, classified by the logical operation that caused them. In a
// multicast network one broadcast is a single transmission however many
// sites hear it; with unique addressing each destination costs one.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace reldev::net {

enum class AddressingMode : std::uint8_t {
  kMulticast = 0,  // §5.1: one transmission reaches any number of sites
  kUnique = 1,     // §5.2: one transmission per destination
};

/// The logical operations §5 decomposes traffic by.
enum class OpKind : std::uint8_t { kRead = 0, kWrite = 1, kRecovery = 2, kOther = 3 };

const char* op_kind_name(OpKind kind) noexcept;

/// Counts transmissions per OpKind. The protocol engines set the current
/// operation before doing work; the transport reports transmissions here.
/// Counters are atomic: with parallel fan-out, worker threads report
/// concurrently, and stragglers past an early-stop quorum report *after*
/// the operation returned — under the OpKind captured when the fan-out was
/// dispatched (add_for), so late replies land in the right bucket.
class TrafficMeter {
 public:
  void set_current_op(OpKind kind) noexcept {
    current_.store(kind, std::memory_order_relaxed);
  }
  [[nodiscard]] OpKind current_op() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  void add(std::uint64_t transmissions) noexcept {
    add_for(current_op(), transmissions);
  }

  /// Report transmissions under an explicit operation, regardless of what
  /// the engine thread is doing now.
  void add_for(OpKind kind, std::uint64_t transmissions) noexcept {
    counts_[static_cast<std::size_t>(kind)].fetch_add(
        transmissions, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count(OpKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<OpKind> current_{OpKind::kOther};
  std::array<std::atomic<std::uint64_t>, 4> counts_{};
};

/// RAII helper: sets the meter's operation for a scope, restores on exit.
class OpScope {
 public:
  OpScope(TrafficMeter& meter, OpKind kind) noexcept
      : meter_(meter), previous_(meter.current_op()) {
    meter_.set_current_op(kind);
  }
  ~OpScope() { meter_.set_current_op(previous_); }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  TrafficMeter& meter_;
  OpKind previous_;
};

}  // namespace reldev::net
