// Fault injection at the transport seam: a decorator over any Transport
// that subjects every traversal of a (from, to) link to programmable
// faults — loss, added latency, duplication, payload corruption, and
// one-way or two-way partitions. The paper's analysis assumes reliable
// delivery between live sites; this layer is how we probe what the real
// system does when that assumption bends, with every run reproducible
// from one seed.
//
// Faults are modeled at the point a frame would cross the wire:
//   * a dropped request surfaces to the caller as kTimeout and the peer
//     never executes it; a dropped reply also surfaces as kTimeout but the
//     peer DID execute — both halves of the classic at-most-once ambiguity
//     are exercised, chosen by coin flip per dropped call;
//   * a corrupted frame is what the CRC-32C frame trailer would catch, so
//     it surfaces as a typed kCorruption error (request-side corruption is
//     rejected before the peer executes; reply-side after);
//   * a duplicated message executes the handler twice — engines must be
//     idempotent under at-least-once delivery;
//   * a blocked link silently eats one-way traffic and fails calls with
//     kUnavailable, exactly like a partition.
//
// Rules can be flipped at runtime (mid-scenario) from any thread; fate
// decisions are made under one lock with a seeded util::Rng so a fixed
// seed and call sequence replay the same schedule.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <utility>

#include "reldev/net/transport.hpp"
#include "reldev/util/rng.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::net {

/// Programmable faults for one directed link. Probabilities are evaluated
/// independently per traversal in the order: blocked, drop, corrupt,
/// duplicate; delay applies to whatever survives.
struct FaultRule {
  double drop = 0.0;       ///< P(message lost in transit)
  double corrupt = 0.0;    ///< P(frame garbled; caught by the CRC trailer)
  double duplicate = 0.0;  ///< P(message delivered twice)
  std::chrono::milliseconds delay{0};  ///< added latency per traversal
  bool blocked = false;    ///< one-way partition: nothing crosses

  [[nodiscard]] bool is_noop() const noexcept {
    return drop == 0.0 && corrupt == 0.0 && duplicate == 0.0 &&
           delay.count() == 0 && !blocked;
  }
};

/// Counters of injected faults since construction (or reset_stats).
struct FaultStats {
  std::uint64_t delivered = 0;   ///< traversals forwarded unharmed
  std::uint64_t dropped = 0;     ///< messages lost (request or reply)
  std::uint64_t corrupted = 0;   ///< frames garbled and CRC-rejected
  std::uint64_t duplicated = 0;  ///< extra deliveries injected
  std::uint64_t blocked = 0;     ///< traversals refused by a partition
  std::uint64_t delayed = 0;     ///< traversals that slept
};

class FaultInjectingTransport final : public Transport {
 public:
  /// Decorates `inner`, which must outlive this object. All faults start
  /// disabled: with no rules set the decorator is a transparent pass-through.
  explicit FaultInjectingTransport(Transport& inner,
                                   std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // --- runtime control handle (thread-safe, usable mid-scenario) ----------

  /// Rule applied to links with no per-link rule.
  void set_default_rule(const FaultRule& rule) RELDEV_EXCLUDES(mutex_);
  /// Rule for the directed link from -> to (replaces any previous rule).
  void set_link_rule(SiteId from, SiteId to, const FaultRule& rule)
      RELDEV_EXCLUDES(mutex_);
  /// Current effective rule for the link (the per-link rule, else the
  /// default) — read-modify-write this to adjust one fault dimension.
  [[nodiscard]] FaultRule link_rule(SiteId from, SiteId to) const
      RELDEV_EXCLUDES(mutex_);
  /// Remove the per-link rule (the link falls back to the default rule).
  void clear_link_rule(SiteId from, SiteId to) RELDEV_EXCLUDES(mutex_);
  /// One-way partition: nothing crosses from -> to (replies of calls made
  /// by `to` toward `from` still flow — it is the forward path that dies).
  void block_link(SiteId from, SiteId to) RELDEV_EXCLUDES(mutex_);
  /// Two-way partition between a pair of sites.
  void block_pair(SiteId a, SiteId b) RELDEV_EXCLUDES(mutex_);
  /// Clear every rule, default included: the network is whole again.
  void heal() RELDEV_EXCLUDES(mutex_);
  /// Restart the fault schedule from a fresh seed.
  void reseed(std::uint64_t seed) RELDEV_EXCLUDES(mutex_);

  [[nodiscard]] FaultStats stats() const RELDEV_EXCLUDES(mutex_);
  void reset_stats() RELDEV_EXCLUDES(mutex_);

  [[nodiscard]] Transport& inner() noexcept { return inner_; }

  using Transport::multicast_call;

  [[nodiscard]] Result<Message> call(SiteId from, SiteId to, const Message& request) override;
  [[nodiscard]] Status send(SiteId from, SiteId to, const Message& message) override;
  [[nodiscard]] Status multicast(SiteId from, const SiteSet& to,
                   const Message& message) override;
  std::vector<GatherReply> multicast_call(
      SiteId from, const SiteSet& to, const Message& request,
      const EarlyStop& early_stop) override;

 private:
  /// The outcome decided for one traversal of one link.
  enum class FateKind {
    kDeliver,
    kBlocked,
    kDropRequest,   ///< lost before the peer: never executed
    kDropReply,     ///< lost after the peer: executed, answer gone
    kCorruptRequest,///< CRC reject at the peer: never executed
    kCorruptReply,  ///< CRC reject at the caller: executed
    kDuplicate,     ///< executed twice, one answer returned
  };
  struct Fate {
    FateKind kind = FateKind::kDeliver;
    std::chrono::milliseconds delay{0};
  };

  /// Draws a fate for one traversal; updates stats. Takes the lock. The
  /// injected delay is slept OUTSIDE the lock (in apply_delay) so a slow
  /// link never stalls fate decisions for other links.
  Fate decide(SiteId from, SiteId to) RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] const FaultRule& rule_for_locked(SiteId from, SiteId to) const
      RELDEV_REQUIRES(mutex_);
  static void apply_delay(const Fate& fate);

  Transport& inner_;
  mutable Mutex mutex_{"FaultInjectingTransport.mutex"};
  Rng rng_ RELDEV_GUARDED_BY(mutex_);
  FaultRule default_rule_ RELDEV_GUARDED_BY(mutex_);
  std::map<std::pair<SiteId, SiteId>, FaultRule> link_rules_
      RELDEV_GUARDED_BY(mutex_);
  FaultStats stats_ RELDEV_GUARDED_BY(mutex_);
};

}  // namespace reldev::net
