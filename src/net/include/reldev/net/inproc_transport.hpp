// In-process transport: synchronous dispatch between handlers registered in
// one address space. Serves unit tests, the examples, and the discrete-
// event experiments (where latency is irrelevant to §4/§5's metrics but
// reachability and transmission counts are everything).
//
// Reachability: a site can be marked down (fail-stop) — calls to it fail,
// one-way messages to it vanish. Partitions can be injected for tests that
// probe the available-copy algorithms' no-partition assumption.
#pragma once

#include <unordered_map>

#include "reldev/net/transport.hpp"

namespace reldev::net {

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(AddressingMode mode = AddressingMode::kMulticast);

  /// Register the handler for a site. Rebinding replaces the old handler.
  void bind(SiteId site, MessageHandler* handler);
  void unbind(SiteId site);

  /// Fail-stop control. A down site neither receives nor (by construction)
  /// sends; engines on a down site are simply never invoked.
  void set_up(SiteId site, bool up);
  [[nodiscard]] bool is_up(SiteId site) const;

  /// Partition injection: sites in different partition groups cannot
  /// exchange messages. By default all sites share group 0 (no partition).
  void set_partition_group(SiteId site, int group);
  void clear_partitions();

  /// Transmission accounting (§5). The meter is owned by the caller so one
  /// experiment can share it across transports; may be null.
  void set_traffic_meter(TrafficMeter* meter) noexcept { meter_ = meter; }
  [[nodiscard]] AddressingMode mode() const noexcept { return mode_; }

  using Transport::multicast_call;

  [[nodiscard]] Result<Message> call(SiteId from, SiteId to, const Message& request) override;
  [[nodiscard]] Status send(SiteId from, SiteId to, const Message& message) override;
  [[nodiscard]] Status multicast(SiteId from, const SiteSet& to,
                   const Message& message) override;
  /// Synchronous model of the parallel gather: once `early_stop` is
  /// satisfied the remaining reachable members still handle the request
  /// and their replies are still metered (the request already reached
  /// them), but they are not returned — exactly the TCP contract.
  std::vector<GatherReply> multicast_call(SiteId from, const SiteSet& to,
                                          const Message& request,
                                          const EarlyStop& early_stop) override;

 private:
  [[nodiscard]] bool reachable(SiteId from, SiteId to) const;
  void count(std::uint64_t transmissions) const;

  AddressingMode mode_;
  TrafficMeter* meter_ = nullptr;
  std::unordered_map<SiteId, MessageHandler*> handlers_;
  std::unordered_map<SiteId, bool> up_;
  std::unordered_map<SiteId, int> partition_;
};

}  // namespace reldev::net
