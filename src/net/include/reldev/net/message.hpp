// Protocol messages: the "high-level transmissions" whose counts §5 of the
// paper analyzes. Every message exchanged by the consistency algorithms —
// vote collection, block transfer, write propagation, recovery — and by the
// client/server pair (driver stub <-> site server) is one of these payloads.
// Encoding is centralized here so the in-process and TCP transports carry
// identical bits.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "reldev/storage/block.hpp"
#include "reldev/storage/site_metadata.hpp"
#include "reldev/storage/version.hpp"
#include "reldev/util/result.hpp"

namespace reldev::net {

using storage::BlockData;
using storage::BlockId;
using storage::SiteId;
using storage::SiteSet;
using storage::VersionNumber;
using storage::VersionVector;

/// The three states of §3.2: failed sites do not answer at all; comatose
/// sites answer state inquiries but hold possibly stale data; available
/// sites hold the most recent version.
enum class SiteState : std::uint8_t { kFailed = 0, kComatose = 1, kAvailable = 2 };

const char* site_state_name(SiteState state) noexcept;

/// Whether a quorum is being collected for a read or a write (voting).
enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1 };

// --- voting (Figures 3 and 4) ---------------------------------------------

/// Broadcast by the coordinator to collect votes for one block access.
struct VoteRequest {
  AccessKind access;
  BlockId block;
};

/// One site's vote: its version of the block and its assigned weight
/// (weights are fixed-point millivotes so ties can be broken by a small
/// perturbation, as §4.1 prescribes).
struct VoteReply {
  VersionNumber version;
  std::uint32_t weight_millivotes;
};

/// Fetch the payload of a block from the site holding the newest copy.
struct BlockFetchRequest {
  BlockId block;
};
struct BlockFetchReply {
  VersionNumber version;
  BlockData data;
};

/// Voting write push: the new payload and incremented version, sent to
/// every site in the quorum (repairs operational stale copies en passant).
struct BlockUpdate {
  BlockId block;
  VersionNumber version;
  BlockData data;
};

// --- available copy / naive available copy (Figures 5 and 6) --------------

/// Write-all push. Under AC each recipient acknowledges (the coordinator
/// learns the new was-available set from the ack set); under NAC no ack is
/// expected. `was_available` carries the coordinator's W so recipients can
/// adopt it (empty under NAC).
struct WriteAllRequest {
  BlockId block;
  VersionNumber version;
  BlockData data;
  SiteSet was_available;
};
struct WriteAllAck {};

/// Recovery step 1: a repairing site asks everyone who is out there.
struct StateInquiry {};
struct StateInfo {
  SiteState state;
  /// Scalar "version(t)" of Figures 5/6: the sum of the site's per-block
  /// versions. Within a closure set after a total failure the last-failed
  /// site dominates every other member block-wise, so the larger total
  /// always identifies it.
  std::uint64_t version_total;
  /// The responder's persisted W (empty under the naive scheme).
  SiteSet was_available;
};

/// Recovery step 2 (Figure 5): send my version vector; receive the correct
/// vector plus every block that changed while I was down.
struct RepairRequest {
  VersionVector versions;
};
struct RepairReply {
  VersionVector versions;
  /// Blocks the requester must replace, parallel to stale entries.
  std::vector<BlockUpdate> blocks;
};

/// Was-available set maintenance (AC only). With `replace` false the
/// recipient unions the set into its own (recovery step 3 of Figure 5:
/// the repair source learns its W now includes the repaired site). With
/// `replace` true the recipient adopts the set outright — the "atomic
/// broadcast" variant of §3.2, where every write's exact acknowledgement
/// set is pushed to all recipients.
struct WasAvailableUpdate {
  SiteSet was_available;
  bool replace;
};
struct WasAvailableAck {};

// --- client <-> server (the device interface of §2) ------------------------

struct ClientReadRequest {
  BlockId block;
};
struct ClientReadReply {
  /// kOk, or kUnavailable when no quorum / no available copy exists.
  std::uint8_t error_code;
  BlockData data;
};

struct ClientWriteRequest {
  BlockId block;
  BlockData data;
};
struct ClientWriteReply {
  std::uint8_t error_code;
};

struct DeviceInfoRequest {};
struct DeviceInfoReply {
  std::uint64_t block_count;
  std::uint64_t block_size;
};

/// Generic error reply (protocol violations, unbound sites).
struct ErrorReply {
  std::uint8_t error_code;
  std::string message;
};

// --- vectored block I/O (batched multi-block operations) -------------------
// One message per *batch* instead of one per block, so a k-block file read
// or write costs one client round trip and one quorum round. §5's cost
// metric counts high-level transmissions, and a batched message is still a
// single transmission — batching strictly reduces counted traffic.

/// Client read of blocks [first, first + count).
struct MultiBlockReadRequest {
  BlockId first;
  std::uint32_t count;
};
/// Flat payload of count * block_size bytes (empty on error).
struct MultiBlockReadReply {
  std::uint8_t error_code;
  BlockData data;
};

/// Client write of data.size() / block_size consecutive blocks at `first`.
struct MultiBlockWriteRequest {
  BlockId first;
  BlockData data;
};
struct MultiBlockWriteAck {
  std::uint8_t error_code;
};

/// One vote collection covering a whole block range (the batched form of
/// VoteRequest): the reply carries the responder's version of every block
/// in [first, first + count), parallel to the range.
struct RangeVoteRequest {
  AccessKind access;
  BlockId first;
  std::uint32_t count;
};
struct RangeVoteReply {
  std::uint32_t weight_millivotes;
  std::vector<VersionNumber> versions;
};

/// Fetch several (not necessarily consecutive) blocks from one site in one
/// round trip — the batched read repair of stale local copies.
struct BatchFetchRequest {
  std::vector<BlockId> blocks;
};
struct BatchFetchReply {
  std::vector<BlockUpdate> updates;
};

/// Grouped write push: every update in one message, applied together by
/// the recipient (a site receives the whole batch or none of it — no torn
/// multi-block writes). Voting's post-quorum push and NAC's write-all send
/// an empty `was_available`; AC carries the coordinator's W exactly as the
/// scalar WriteAllRequest does. Acknowledged with WriteAllAck.
struct BatchWriteRequest {
  std::vector<BlockUpdate> updates;
  SiteSet was_available;
};

// --- anti-entropy digest exchange (background scrubber) --------------------
// A scrub batch compares replicas by cheap CRC-32C digests instead of
// shipping payloads: one DigestRequest covers a whole run of blocks (the
// batched style of the vectored ops above), and only blocks whose digests
// disagree cost a payload transfer via the existing fetch/repair machinery.

/// Ask a peer for the (version, digest) of every block in
/// [first, first + count).
struct DigestRequest {
  BlockId first;
  std::uint32_t count;
};

/// Parallel vectors over the requested range. A locally unreadable
/// (latently corrupt) block is reported as version 0 with a zero-block
/// digest — the responder demotes it rather than vouching for damage.
struct DigestReply {
  BlockId first;
  std::vector<VersionNumber> versions;
  std::vector<std::uint32_t> digests;
};

using Payload =
    std::variant<VoteRequest, VoteReply, BlockFetchRequest, BlockFetchReply,
                 BlockUpdate, WriteAllRequest, WriteAllAck, StateInquiry,
                 StateInfo, RepairRequest, RepairReply, WasAvailableUpdate,
                 WasAvailableAck, ClientReadRequest, ClientReadReply,
                 ClientWriteRequest, ClientWriteReply, DeviceInfoRequest,
                 DeviceInfoReply, ErrorReply, MultiBlockReadRequest,
                 MultiBlockReadReply, MultiBlockWriteRequest, MultiBlockWriteAck,
                 RangeVoteRequest, RangeVoteReply, BatchFetchRequest,
                 BatchFetchReply, BatchWriteRequest, DigestRequest,
                 DigestReply>;

/// A routed message: who sent it plus its payload.
struct Message {
  SiteId from = 0;
  Payload payload;

  /// Human-readable payload name for logs ("vote-request", ...).
  [[nodiscard]] const char* name() const noexcept;

  /// Convenience accessors; contract violation if the payload is another
  /// alternative (callers must check with holds() first when unsure).
  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return std::holds_alternative<T>(payload);
  }
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(payload);
  }

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<Message> decode(std::span<const std::byte> raw);
};

/// Builds an ErrorReply message from a Status.
Message make_error(SiteId from, const Status& status);

}  // namespace reldev::net
