// FanOut: a small shared worker pool for concurrent RPC fan-out. A group
// operation submits one task per peer; the tasks run in parallel so the
// latency of a multicast round is the *maximum* per-peer round trip, not
// the sum. Tasks may outlive the operation that launched them (stragglers
// past an early-stop quorum keep running so their replies can still be
// metered); anything a task touches must therefore be owned by the task
// itself or by a shared_ptr it captures.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "reldev/util/thread_annotations.hpp"

namespace reldev::net {

class FanOut {
 public:
  /// A pool sized for small replica groups: enough threads that one full
  /// fan-out (group sizes of 3..9) plus a concurrent operation's stragglers
  /// never queue behind each other on typical hardware.
  static std::size_t default_thread_count();

  explicit FanOut(std::size_t threads = default_thread_count());

  /// Drains the queue and joins the workers. Every submitted task runs to
  /// completion before the destructor returns; submitters that need their
  /// tasks finished earlier must track completion themselves (see
  /// TcpPeerTransport's outstanding-task latch).
  ~FanOut();

  FanOut(const FanOut&) = delete;
  FanOut& operator=(const FanOut&) = delete;

  /// Process-wide pool shared by every transport. Constructed on first use;
  /// lives until process exit.
  static FanOut& shared();

  /// Resize the shared pool (daemon --fanout-threads, tests). The previous
  /// pool is drained and joined before the replacement is built, so no
  /// in-flight task is lost. Must not be called from a task running on the
  /// shared pool itself.
  static void set_shared_thread_count(std::size_t threads);

  /// Enqueue a task. Never blocks; tasks run in submission order as workers
  /// free up.
  void submit(std::function<void()> task) RELDEV_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop() RELDEV_EXCLUDES(mutex_);

  Mutex mutex_{"FanOut.mutex"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ RELDEV_GUARDED_BY(mutex_);
  bool stopping_ RELDEV_GUARDED_BY(mutex_) = false;
  // Written only by the constructor; joined by the destructor after the
  // workers have been told to stop — no guard needed.
  std::vector<std::thread> workers_;
};

}  // namespace reldev::net
