#include "reldev/util/crc32.hpp"

#include <array>
#include <cstring>

namespace reldev {

namespace {

// CRC-32C (Castagnoli) polynomial, reflected form.
constexpr std::uint32_t kPolynomial = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

std::uint32_t crc32c_sw(std::span<const std::byte> data,
                        std::uint32_t crc) noexcept {
  for (const std::byte b : data) {
    crc = (crc >> 8) ^
          kTable[(crc ^ static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(b))) & 0xffu];
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RELDEV_CRC32C_HW 1
// The SSE4.2 crc32 instruction computes exactly this reflected-Castagnoli
// CRC, 8 bytes per issue instead of 1 byte per table lookup — the block
// payload checksums on the storage write path are where this matters.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::span<const std::byte> data, std::uint32_t crc) noexcept {
  const std::byte* p = data.data();
  std::size_t n = data.size();
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, std::to_integer<std::uint8_t>(*p));
    ++p;
    --n;
  }
  return crc;
}

const bool kHaveHwCrc = __builtin_cpu_supports("sse4.2") != 0;
#endif

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed) noexcept {
  const std::uint32_t crc = ~seed;
#ifdef RELDEV_CRC32C_HW
  if (kHaveHwCrc) return ~crc32c_hw(data, crc);
#endif
  return ~crc32c_sw(data, crc);
}

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  return crc32c(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      seed);
}

}  // namespace reldev
