#include "reldev/util/crc32.hpp"

#include <array>

namespace reldev {

namespace {

// CRC-32C (Castagnoli) polynomial, reflected form.
constexpr std::uint32_t kPolynomial = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^
          kTable[(crc ^ static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(b))) & 0xffu];
  }
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  return crc32c(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      seed);
}

}  // namespace reldev
