#include "reldev/util/logging.hpp"

#include <iostream>

namespace reldev {

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger()
    : level_(static_cast<int>(LogLevel::kWarn)), sink_(&std::cerr) {}

void Logger::set_sink(std::ostream* sink) {
  const MutexLock lock(mutex_);
  sink_ = sink != nullptr ? sink : &std::cerr;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  const MutexLock lock(mutex_);
  (*sink_) << '[' << log_level_name(level) << "] " << component << ": "
           << message << '\n';
  sink_->flush();
}

}  // namespace reldev
