#include "reldev/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "reldev/util/assert.hpp"

namespace reldev {

void OnlineStats::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeightedStat::record(double now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
  } else {
    RELDEV_EXPECTS(now >= last_time_);
    weighted_sum_ += last_value_ * (now - last_time_);
  }
  last_time_ = now;
  last_value_ = value;
}

double TimeWeightedStat::average(double now) const {
  RELDEV_EXPECTS(started_);
  RELDEV_EXPECTS(now >= last_time_);
  const double horizon = now - start_;
  if (horizon == 0.0) return last_value_;
  const double total = weighted_sum_ + last_value_ * (now - last_time_);
  return total / horizon;
}

double BatchMeans::half_width(double z) const {
  if (stats_.count() < 2) return 0.0;
  return z * stats_.stddev() / std::sqrt(static_cast<double>(stats_.count()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  RELDEV_EXPECTS(hi > lo);
  RELDEV_EXPECTS(bins > 0);
}

void Histogram::add(double sample) noexcept {
  const double position = (sample - lo_) / width_;
  std::size_t bin = 0;
  if (position >= 0.0) {
    bin = std::min(counts_.size() - 1, static_cast<std::size_t>(position));
  }
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  RELDEV_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::quantile(double q) const {
  RELDEV_EXPECTS(q >= 0.0 && q <= 1.0);
  RELDEV_EXPECTS(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double next = cumulative + static_cast<double>(counts_[bin]);
    if (next >= target) {
      // Interpolate within this bin.
      const double fraction =
          counts_[bin] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[bin]);
      return lo_ + (static_cast<double>(bin) + fraction) * width_;
    }
    cumulative = next;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

}  // namespace reldev
