#include "reldev/util/flags.hpp"

#include <charconv>
#include <sstream>

#include "reldev/util/assert.hpp"

namespace reldev {

void FlagSet::add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}
void FlagSet::add_double(const std::string& name, double default_value,
                         const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}
void FlagSet::add_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}
void FlagSet::add_bool(const std::string& name, bool default_value,
                       const std::string& help) {
  flags_[name] = Flag{Value{default_value}, help};
}

Status FlagSet::set_from_text(const std::string& name,
                              const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return errors::invalid_argument("unknown flag --" + name);
  }
  Value& value = it->second.value;
  if (std::holds_alternative<std::int64_t>(value)) {
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return errors::invalid_argument("flag --" + name +
                                      " expects an integer, got '" + text + "'");
    }
    value = parsed;
  } else if (std::holds_alternative<double>(value)) {
    try {
      std::size_t used = 0;
      const double parsed = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      value = parsed;
    } catch (const std::exception&) {
      return errors::invalid_argument("flag --" + name +
                                      " expects a number, got '" + text + "'");
    }
  } else if (std::holds_alternative<bool>(value)) {
    if (text == "true" || text == "1") {
      value = true;
    } else if (text == "false" || text == "0") {
      value = false;
    } else {
      return errors::invalid_argument("flag --" + name +
                                      " expects true/false, got '" + text + "'");
    }
  } else {
    value = text;
  }
  return Status::ok();
}

Status FlagSet::parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      if (auto status = set_from_text(body.substr(0, eq), body.substr(eq + 1));
          !status.is_ok()) {
        return status;
      }
      continue;
    }
    // Bare --flag is shorthand for a boolean true; otherwise consume the
    // next argument as the value.
    auto it = flags_.find(body);
    if (it != flags_.end() && std::holds_alternative<bool>(it->second.value)) {
      it->second.value = true;
      continue;
    }
    if (i + 1 >= argc) {
      return errors::invalid_argument("flag --" + body + " is missing a value");
    }
    if (auto status = set_from_text(body, argv[++i]); !status.is_ok()) {
      return status;
    }
  }
  return Status::ok();
}

std::int64_t FlagSet::get_int(const std::string& name) const {
  auto it = flags_.find(name);
  RELDEV_EXPECTS(it != flags_.end());
  return std::get<std::int64_t>(it->second.value);
}
double FlagSet::get_double(const std::string& name) const {
  auto it = flags_.find(name);
  RELDEV_EXPECTS(it != flags_.end());
  return std::get<double>(it->second.value);
}
const std::string& FlagSet::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  RELDEV_EXPECTS(it != flags_.end());
  return std::get<std::string>(it->second.value);
}
bool FlagSet::get_bool(const std::string& name) const {
  auto it = flags_.find(name);
  RELDEV_EXPECTS(it != flags_.end());
  return std::get<bool>(it->second.value);
}

std::string FlagSet::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (std::holds_alternative<std::int64_t>(flag.value)) {
      out << "=<int, default " << std::get<std::int64_t>(flag.value) << '>';
    } else if (std::holds_alternative<double>(flag.value)) {
      out << "=<number, default " << std::get<double>(flag.value) << '>';
    } else if (std::holds_alternative<bool>(flag.value)) {
      out << "=<bool, default " << (std::get<bool>(flag.value) ? "true" : "false")
          << '>';
    } else {
      out << "=<string, default '" << std::get<std::string>(flag.value) << "'>";
    }
    out << "\n      " << flag.help << '\n';
  }
  return out.str();
}

}  // namespace reldev
