#include "reldev/util/result.hpp"

namespace reldev {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kCorruption:
      return "corruption";
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kConflict:
      return "conflict";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string text = error_code_name(code_);
  if (!message_.empty()) {
    text += ": ";
    text += message_;
  }
  return text;
}

}  // namespace reldev
