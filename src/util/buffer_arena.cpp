#include "reldev/util/buffer_arena.hpp"

#include <utility>

namespace reldev::util {

std::size_t BufferArena::class_index(std::size_t size) noexcept {
  std::size_t capacity = kMinClass;
  std::size_t index = 0;
  while (capacity < size && index < kClassCount) {
    capacity <<= 1;
    ++index;
  }
  return capacity >= size ? index : kClassCount;
}

ArenaBuffer::~ArenaBuffer() { release(); }

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this != &other) {
    release();
    arena_ = other.arena_;
    storage_ = std::move(other.storage_);
    size_ = other.size_;
    other.arena_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void ArenaBuffer::release() {
  if (arena_ != nullptr && !storage_.empty()) {
    arena_->give_back(std::move(storage_));
  }
  storage_.clear();
  arena_ = nullptr;
  size_ = 0;
}

BufferArena::BufferArena(std::size_t max_pooled_bytes)
    : max_pooled_bytes_(max_pooled_bytes) {}

BufferArena& BufferArena::shared() {
  static auto* arena = new BufferArena();  // leaked: outlives every user
  return *arena;
}

std::size_t BufferArena::class_capacity(std::size_t size) noexcept {
  const std::size_t index = class_index(size);
  return index >= kClassCount ? size : (kMinClass << index);
}

ArenaBuffer BufferArena::acquire(std::size_t size) {
  const std::size_t index = class_index(size);
  if (index >= kClassCount) {
    {
      const MutexLock lock(mutex_);
      ++unpooled_;
    }
    // Oversized: plain allocation, freed on release (arena_ stays null in
    // the pooling sense — give_back drops storage above the max class).
    return {this, std::vector<std::byte>(size), size};
  }
  {
    const MutexLock lock(mutex_);
    auto& free_list = free_lists_[index];
    if (!free_list.empty()) {
      std::vector<std::byte> storage = std::move(free_list.back());
      free_list.pop_back();
      pooled_bytes_ -= storage.size();
      ++hits_;
      return {this, std::move(storage), size};
    }
    ++misses_;
  }
  return {this, std::vector<std::byte>(kMinClass << index), size};
}

void BufferArena::give_back(std::vector<std::byte> storage) {
  const std::size_t capacity = storage.size();
  const std::size_t index = class_index(capacity);
  // Only exact class-sized storage goes back on a list; anything else
  // (oversized one-offs) is freed by letting `storage` die here.
  if (index >= kClassCount || (kMinClass << index) != capacity) return;
  const MutexLock lock(mutex_);
  if (pooled_bytes_ + capacity > max_pooled_bytes_) return;
  pooled_bytes_ += capacity;
  free_lists_[index].push_back(std::move(storage));
}

BufferArena::Stats BufferArena::stats() const {
  const MutexLock lock(mutex_);
  return {hits_, misses_, unpooled_, pooled_bytes_};
}

void BufferArena::trim() {
  const MutexLock lock(mutex_);
  for (auto& free_list : free_lists_) free_list.clear();
  pooled_bytes_ = 0;
}

}  // namespace reldev::util
