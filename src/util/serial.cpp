#include "reldev/util/serial.hpp"

#include <bit>
#include <cstring>

namespace reldev {

namespace {
// All integers are encoded little-endian regardless of host order so that
// on-disk stores and network peers interoperate across architectures.
template <typename T>
void append_le(std::vector<std::byte>& buffer, T value) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buffer.push_back(
        static_cast<std::byte>((static_cast<std::uint64_t>(value) >> (8 * i)) &
                               0xffu));
  }
}

template <typename T>
T read_le(std::span<const std::byte> data) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(data[i]))
             << (8 * i);
  }
  return static_cast<T>(value);
}
}  // namespace

void BufferWriter::put_u8(std::uint8_t value) { append_le(buffer_, value); }
void BufferWriter::put_u16(std::uint16_t value) { append_le(buffer_, value); }
void BufferWriter::put_u32(std::uint32_t value) { append_le(buffer_, value); }
void BufferWriter::put_u64(std::uint64_t value) { append_le(buffer_, value); }
void BufferWriter::put_i64(std::int64_t value) {
  append_le(buffer_, static_cast<std::uint64_t>(value));
}

void BufferWriter::put_f64(double value) {
  put_u64(std::bit_cast<std::uint64_t>(value));
}

void BufferWriter::put_bytes(std::span<const std::byte> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_raw(bytes);
}

void BufferWriter::put_string(const std::string& text) {
  put_bytes(std::as_bytes(std::span<const char>(text.data(), text.size())));
}

void BufferWriter::put_raw(std::span<const std::byte> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BufferWriter::put_u64_vector(const std::vector<std::uint64_t>& values) {
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (const auto v : values) put_u64(v);
}

Status BufferReader::need(std::size_t count) const {
  if (remaining() < count) {
    return errors::corruption("truncated input: need " + std::to_string(count) +
                              " bytes, have " + std::to_string(remaining()));
  }
  return Status::ok();
}

namespace {
template <typename T>
Result<T> read_fixed(std::span<const std::byte> data, std::size_t& offset,
                     Status need_status) {
  if (!need_status.is_ok()) return need_status;
  T value = read_le<T>(data.subspan(offset, sizeof(T)));
  offset += sizeof(T);
  return value;
}
}  // namespace

Result<std::uint8_t> BufferReader::get_u8() {
  return read_fixed<std::uint8_t>(data_, offset_, need(1));
}
Result<std::uint16_t> BufferReader::get_u16() {
  return read_fixed<std::uint16_t>(data_, offset_, need(2));
}
Result<std::uint32_t> BufferReader::get_u32() {
  return read_fixed<std::uint32_t>(data_, offset_, need(4));
}
Result<std::uint64_t> BufferReader::get_u64() {
  return read_fixed<std::uint64_t>(data_, offset_, need(8));
}
Result<std::int64_t> BufferReader::get_i64() {
  auto raw = get_u64();
  if (!raw) return raw.status();
  return static_cast<std::int64_t>(raw.value());
}

Result<double> BufferReader::get_f64() {
  auto raw = get_u64();
  if (!raw) return raw.status();
  return std::bit_cast<double>(raw.value());
}

Result<bool> BufferReader::get_bool() {
  auto raw = get_u8();
  if (!raw) return raw.status();
  if (raw.value() > 1) return errors::corruption("bool byte out of range");
  return raw.value() == 1;
}

Result<std::vector<std::byte>> BufferReader::get_bytes() {
  auto size = get_u32();
  if (!size) return size.status();
  return get_raw(size.value());
}

Result<std::string> BufferReader::get_string() {
  auto bytes = get_bytes();
  if (!bytes) return bytes.status();
  const auto& raw = bytes.value();
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

Result<std::vector<std::byte>> BufferReader::get_raw(std::size_t size) {
  if (auto status = need(size); !status.is_ok()) return status;
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(offset_ + size));
  offset_ += size;
  return out;
}

Result<std::vector<std::uint64_t>> BufferReader::get_u64_vector() {
  auto size = get_u32();
  if (!size) return size.status();
  if (auto status = need(std::size_t{size.value()} * 8); !status.is_ok()) {
    return status;
  }
  std::vector<std::uint64_t> values;
  values.reserve(size.value());
  for (std::uint32_t i = 0; i < size.value(); ++i) {
    values.push_back(get_u64().value());
  }
  return values;
}

}  // namespace reldev
