#include "reldev/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "reldev/util/assert.hpp"

namespace reldev {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RELDEV_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RELDEV_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    out << '+';
    for (const auto width : widths) {
      out << std::string(width + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::setw(static_cast<int>(widths[c])) << std::right
          << cells[c] << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TextTable::print_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace reldev
