// A token bucket for rate limiting background work (the scrubber's
// bytes/s and ops/s budgets). The bucket always grants — callers doing
// background work should not fail, only slow down — and reports the delay
// needed to repay any debt the grant created. Synchronous callers may
// ignore the delay (accounting-only mode); the background scrub loop
// sleeps it off before the next batch.
//
// Time is passed in explicitly so tests drive the bucket with synthetic
// clocks and stay deterministic.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>

namespace reldev {

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: acquire() always returns zero delay.
  TokenBucket() = default;

  /// `rate_per_sec` tokens accrue per second up to a cap of `burst`
  /// (a zero rate means unlimited; a zero burst is clamped to the rate so
  /// one second of budget is always available at once).
  TokenBucket(std::uint64_t rate_per_sec, std::uint64_t burst)
      : rate_(static_cast<double>(rate_per_sec)),
        burst_(burst > 0 ? static_cast<double>(burst)
                         : static_cast<double>(rate_per_sec)) {}

  [[nodiscard]] bool unlimited() const noexcept { return rate_ <= 0.0; }

  /// Take `tokens` now (always granted). Returns how long the caller
  /// should wait before issuing more work so the long-run rate holds:
  /// zero while the bucket is in credit, the debt-repayment time once
  /// it has gone negative.
  std::chrono::nanoseconds acquire(std::uint64_t tokens,
                                   Clock::time_point now) {
    if (unlimited()) return std::chrono::nanoseconds::zero();
    refill(now);
    tokens_ -= static_cast<double>(tokens);
    if (tokens_ >= 0.0) return std::chrono::nanoseconds::zero();
    const double seconds = -tokens_ / rate_;
    return std::chrono::nanoseconds(
        static_cast<std::int64_t>(seconds * 1e9));
  }

  /// Current balance (negative = debt). Refills first.
  [[nodiscard]] double available(Clock::time_point now) {
    if (unlimited()) return 0.0;
    refill(now);
    return tokens_;
  }

 private:
  void refill(Clock::time_point now) {
    if (!last_.has_value()) {
      last_ = now;
      tokens_ = burst_;
      return;
    }
    const std::chrono::duration<double> dt = now - *last_;
    if (dt.count() > 0) {
      tokens_ = std::min(burst_, tokens_ + dt.count() * rate_);
      last_ = now;
    }
  }

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  std::optional<Clock::time_point> last_;
};

}  // namespace reldev
