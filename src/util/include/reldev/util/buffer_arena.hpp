// BufferArena: a thread-safe pool of reusable byte buffers for the network
// hot path. Frame payloads are short-lived and highly size-repetitive (one
// allocation per request at steady state), so the reactor recycles them
// through size-classed free lists instead of hitting the allocator — and,
// more importantly, the buffer a frame lands in is the buffer the decoder
// reads from, so payload bytes are never copied between the wire and
// Message::decode.
//
// Ownership: acquire() returns an ArenaBuffer whose destructor gives the
// storage back to the arena (or frees it outright once the arena holds its
// retention cap). An ArenaBuffer may outlive any particular user, but must
// not outlive the arena itself; the process-wide shared() arena lives until
// process exit, so buffers tied to it are safe everywhere.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "reldev/util/thread_annotations.hpp"

namespace reldev::util {

class BufferArena;

/// A pooled byte buffer: `size()` bytes usable, capacity rounded up to the
/// arena's size class. Move-only; returns its storage to the arena on
/// destruction. A default-constructed ArenaBuffer is empty and unpooled.
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  ~ArenaBuffer();
  ArenaBuffer(ArenaBuffer&& other) noexcept
      : arena_(other.arena_), storage_(std::move(other.storage_)),
        size_(other.size_) {
    other.arena_ = nullptr;
    other.size_ = 0;
  }
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::byte* data() noexcept { return storage_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept {
    return storage_.data();
  }
  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return {storage_.data(), size_};
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {storage_.data(), size_};
  }

  /// Shrink the usable size (never grows past the acquired size).
  void truncate(std::size_t size) noexcept {
    if (size < size_) size_ = size;
  }

  /// Hand the storage back to the arena now instead of at destruction.
  void release();

 private:
  friend class BufferArena;
  ArenaBuffer(BufferArena* arena, std::vector<std::byte> storage,
              std::size_t size)
      : arena_(arena), storage_(std::move(storage)), size_(size) {}

  BufferArena* arena_ = nullptr;
  std::vector<std::byte> storage_;
  std::size_t size_ = 0;
};

/// Size-classed buffer pool. Classes are powers of two from 512 B up to
/// 1 MiB; larger requests are served by plain allocation and freed on
/// release (pooling multi-megabyte one-offs would just hoard memory).
class BufferArena {
 public:
  struct Stats {
    std::uint64_t hits = 0;        // acquire served from a free list
    std::uint64_t misses = 0;      // acquire had to allocate
    std::uint64_t unpooled = 0;    // acquire larger than the biggest class
    std::size_t pooled_bytes = 0;  // bytes currently parked in free lists
  };

  /// `max_pooled_bytes` caps the total bytes parked across all free lists;
  /// releases beyond the cap free their storage instead of pooling it.
  explicit BufferArena(std::size_t max_pooled_bytes = 8u << 20);
  ~BufferArena() = default;
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// Process-wide arena shared by every server shard. Constructed on first
  /// use; lives until process exit.
  static BufferArena& shared();

  /// A buffer with size() == `size` and capacity of the covering class.
  [[nodiscard]] ArenaBuffer acquire(std::size_t size) RELDEV_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const RELDEV_EXCLUDES(mutex_);

  /// Free every pooled buffer (the arena stays usable).
  void trim() RELDEV_EXCLUDES(mutex_);

  /// The capacity class covering `size` (testing/introspection); `size`
  /// itself when it exceeds the largest pooled class.
  [[nodiscard]] static std::size_t class_capacity(std::size_t size) noexcept;

 private:
  static constexpr std::size_t kMinClass = 512;
  static constexpr std::size_t kClassCount = 12;  // 512 << 11 == 1 MiB

  /// Index of the smallest class covering `size`; kClassCount when the
  /// request is bigger than the largest pooled class.
  [[nodiscard]] static std::size_t class_index(std::size_t size) noexcept;

  void give_back(std::vector<std::byte> storage) RELDEV_EXCLUDES(mutex_);
  friend class ArenaBuffer;

  const std::size_t max_pooled_bytes_;
  mutable Mutex mutex_{"BufferArena.mutex"};
  std::array<std::vector<std::vector<std::byte>>, kClassCount> free_lists_
      RELDEV_GUARDED_BY(mutex_);
  std::size_t pooled_bytes_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::uint64_t unpooled_ RELDEV_GUARDED_BY(mutex_) = 0;
};

}  // namespace reldev::util
