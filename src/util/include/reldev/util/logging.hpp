// A small leveled logger. One global sink (stderr by default, redirectable
// for tests); thread-safe; disabled levels cost one atomic load.
#pragma once

#include <atomic>
#include <ostream>
#include <sstream>
#include <string>

#include "reldev/util/thread_annotations.hpp"

namespace reldev {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level) noexcept;

/// Process-wide logging configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Redirect output (tests). Pass nullptr to restore stderr.
  void set_sink(std::ostream* sink) RELDEV_EXCLUDES(mutex_);

  /// Emit one formatted line: "[level] component: message".
  void write(LogLevel level, const std::string& component,
             const std::string& message) RELDEV_EXCLUDES(mutex_);

 private:
  Logger();
  std::atomic<int> level_;
  Mutex mutex_{"Logger.mutex"};
  std::ostream* sink_ RELDEV_GUARDED_BY(mutex_);  // not owned
};

namespace detail {
/// Builds a message with stream syntax and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace reldev

#define RELDEV_LOG(level, component)                        \
  if (!::reldev::Logger::instance().enabled(level)) {      \
  } else                                                    \
    ::reldev::detail::LogLine(level, component)

#define RELDEV_TRACE(component) RELDEV_LOG(::reldev::LogLevel::kTrace, component)
#define RELDEV_DEBUG(component) RELDEV_LOG(::reldev::LogLevel::kDebug, component)
#define RELDEV_INFO(component) RELDEV_LOG(::reldev::LogLevel::kInfo, component)
#define RELDEV_WARN(component) RELDEV_LOG(::reldev::LogLevel::kWarn, component)
#define RELDEV_ERROR(component) RELDEV_LOG(::reldev::LogLevel::kError, component)
