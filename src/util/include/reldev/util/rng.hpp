// Deterministic random-number generation for simulations and tests.
// xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 with std::*_distribution — bit-for-bit reproducible across
// standard libraries, which the experiment harness relies on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "reldev/util/assert.hpp"

namespace reldev {

/// SplitMix64 step; used for seeding and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with explicit distribution methods.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// True with probability p. Requires p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A new generator whose stream is independent of this one; lets each
  /// simulated site own a private stream derived from one experiment seed.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace reldev
