// ASCII table rendering for benchmark output: the bench binaries print the
// same rows/series the paper's figures plot, and this keeps them legible.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace reldev {

/// Column-aligned text table with an optional title; also emits CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Row width must equal the header width.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed precision; helper for row building.
  static std::string fmt(double value, int precision = 6);

  void print(std::ostream& out) const;
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reldev
