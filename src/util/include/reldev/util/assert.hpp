// Contract-checking macros in the spirit of the Core Guidelines' Expects()
// and Ensures(). Violations throw ContractViolation so tests can observe
// them; they are never compiled out, since this library favours catching
// logic errors early over the last few percent of speed.
#pragma once

#include <stdexcept>
#include <string>

namespace reldev {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace reldev

#define RELDEV_EXPECTS(cond)                                                  \
  do {                                                                        \
    if (!(cond))                                                              \
      ::reldev::detail::contract_fail("precondition", #cond, __FILE__,        \
                                      __LINE__);                              \
  } while (false)

#define RELDEV_ENSURES(cond)                                                  \
  do {                                                                        \
    if (!(cond))                                                              \
      ::reldev::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                      __LINE__);                              \
  } while (false)

#define RELDEV_ASSERT(cond)                                                   \
  do {                                                                        \
    if (!(cond))                                                              \
      ::reldev::detail::contract_fail("invariant", #cond, __FILE__,           \
                                      __LINE__);                              \
  } while (false)
