// A minimal command-line flag parser for the examples and benchmark
// binaries: --name=value or --name value; --help prints registered flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "reldev/util/result.hpp"

namespace reldev {

class FlagSet {
 public:
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv; unknown flags or malformed values are errors. Leftover
  /// positional arguments are collected in positional().
  [[nodiscard]] Status parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  /// True when --help was seen; usage() has already been built.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  using Value = std::variant<std::int64_t, double, std::string, bool>;
  struct Flag {
    Value value;
    std::string help;
  };

  [[nodiscard]] Status set_from_text(const std::string& name, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace reldev
