// Binary serialization: a growable little-endian writer and a bounds-checked
// reader. Every protocol message and persistent metadata record is encoded
// through these, so the wire/disk format is defined in exactly one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "reldev/util/result.hpp"

namespace reldev {

/// Appends fixed-width little-endian values to an internal buffer.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void put_u8(std::uint8_t value);
  void put_u16(std::uint16_t value);
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i64(std::int64_t value);
  void put_f64(double value);
  void put_bool(bool value) { put_u8(value ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void put_bytes(std::span<const std::byte> bytes);
  void put_string(const std::string& text);

  /// Raw bytes with no length prefix (block payloads of known size).
  void put_raw(std::span<const std::byte> bytes);

  /// Length-prefixed vector of u64 (site sets, version vectors).
  void put_u64_vector(const std::vector<std::uint64_t>& values);

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {buffer_.data(), buffer_.size()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Reads values back in the order they were written; every accessor returns
/// a Result so truncated or corrupt input is a value-level error, never UB.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> get_u8();
  [[nodiscard]] Result<std::uint16_t> get_u16();
  [[nodiscard]] Result<std::uint32_t> get_u32();
  [[nodiscard]] Result<std::uint64_t> get_u64();
  [[nodiscard]] Result<std::int64_t> get_i64();
  [[nodiscard]] Result<double> get_f64();
  [[nodiscard]] Result<bool> get_bool();

  [[nodiscard]] Result<std::vector<std::byte>> get_bytes();
  [[nodiscard]] Result<std::string> get_string();

  /// Exactly `size` raw bytes (no length prefix).
  [[nodiscard]] Result<std::vector<std::byte>> get_raw(std::size_t size);

  [[nodiscard]] Result<std::vector<std::uint64_t>> get_u64_vector();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  [[nodiscard]] Status need(std::size_t count) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

}  // namespace reldev
