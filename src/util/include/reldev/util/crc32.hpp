// CRC-32C (Castagnoli), used to checksum stored blocks and framed network
// messages so corruption surfaces as ErrorCode::kCorruption rather than as
// silent bad data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace reldev {

/// CRC-32C over `data`, continuing from `seed` (pass the previous result to
/// checksum discontiguous buffers as one stream).
std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed = 0) noexcept;

/// Convenience overload for raw byte ranges.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0) noexcept;

}  // namespace reldev
