// Runtime lock-order and blocking-under-lock checker ("lockdep", after the
// Linux kernel facility of the same name). The static half of the
// concurrency story (Clang thread-safety annotations, DESIGN.md §10)
// proves *which* mutex guards a field; it cannot prove that two mutexes
// are always taken in the same order, or that no blocking syscall runs
// while a lock is held. This module closes that gap dynamically:
//
//   * every reldev::Mutex belongs to a *class* — all mutexes constructed
//     at the same site (or given the same explicit name) share one class,
//     so one test run generalizes over every instance;
//   * each thread keeps a stack of held locks; acquiring B while holding A
//     records the directed edge A -> B in a global acquisition-order
//     graph. The first edge that closes a cycle (B ->* A already known) is
//     reported with both acquisition stacks: where this thread is taking
//     B with A held, and where some earlier thread took the conflicting
//     order. A potential ABBA deadlock is reported the first time the
//     *ordering* is seen — no actual deadlock, no unlucky interleaving
//     needed;
//   * the raw-I/O and socket paths (fd_io.hpp, tcp/socket.cpp) call
//     check_blocking(); if any lock is held, that is a report too — the
//     library's contract is that no pread/pwrite/fsync/send/recv runs
//     under a Mutex (DESIGN.md §10 convention 4);
//   * CondVar::wait cooperates: the waited mutex leaves the held stack for
//     the duration of the sleep (waiting with *other* locks held is its
//     own report kind) and is re-pushed, with ordering re-checked, on
//     wake.
//
// Compiled in only when RELDEV_LOCKDEP is defined (cmake option, default
// ON in Debug; the CI `lockdep` job runs the full tier-1 suite with it).
// Without the macro every hook collapses to an empty inline function, so
// release builds pay nothing.
//
// The default report handler prints to stderr and aborts (like a
// sanitizer with halt_on_error=1); tests install a capturing handler via
// set_handler() to assert on reports without dying.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace reldev::lockdep {

/// What a report is about.
enum class ViolationKind {
  kOrderInversion,     // lock acquisition closes a cycle in the order graph
  kBlockingUnderLock,  // blocking syscall invoked with >= 1 lock held
  kWaitWithLocksHeld,  // CondVar::wait with locks other than its own held
};

const char* violation_kind_name(ViolationKind kind) noexcept;

struct Violation {
  ViolationKind kind;
  /// Full human-readable report: class names, lock sites, and (for order
  /// inversions) both acquisition stacks.
  std::string text;
};

/// True when the checker is compiled in (RELDEV_LOCKDEP).
[[nodiscard]] bool enabled() noexcept;

/// Total violations reported since start / the last reset().
[[nodiscard]] std::uint64_t violation_count() noexcept;

/// Install a report handler (nullptr restores the default print-and-abort
/// handler). The handler runs on the violating thread with no lockdep
/// bookkeeping locks held; it must not itself acquire reldev::Mutex-es
/// that could recurse into the checker (hooks are re-entrancy guarded, so
/// doing so is safe but unchecked).
void set_handler(std::function<void(const Violation&)> handler);

/// Test hook: forget every recorded edge, suppression, and the violation
/// counter, and clear the *calling thread's* held-lock stack. Only
/// meaningful while no other thread holds locks.
void reset();

/// Number of locks the calling thread currently holds (0 when compiled
/// out).
[[nodiscard]] int held_count() noexcept;

/// RAII: suppress blocking-under-lock reports on this thread for a region
/// that blocks by design. Use sparingly, with the justification in
/// `reason` (it is embedded in any report that would have fired, so a
/// stale excuse shows up in the suppressed text, not silently).
class AllowBlocking {
 public:
  explicit AllowBlocking(const char* reason) noexcept;
  ~AllowBlocking();
  AllowBlocking(const AllowBlocking&) = delete;
  AllowBlocking& operator=(const AllowBlocking&) = delete;

 private:
  const char* reason_;
};

#if defined(RELDEV_LOCKDEP)

/// Intern a mutex class. All mutexes registered with the same key string
/// share the class; the key is the explicit name when one was given, else
/// "file:line" of the construction site. Returns a dense id (> 0).
[[nodiscard]] std::uint32_t register_class(const char* name, const char* file,
                                           unsigned line);

/// Called before a blocking lock() on `mutex`: checks the would-be edges
/// (held -> cls) against the order graph, records them, reports a cycle.
void pre_acquire(const void* mutex, std::uint32_t cls, const char* site_file,
                 unsigned site_line);

/// Called after lock()/successful try_lock(): pushes the held entry.
/// try_lock acquisitions skip pre_acquire (they cannot deadlock) but are
/// pushed so they count as held for later edges and blocking checks.
void post_acquire(const void* mutex, std::uint32_t cls, const char* site_file,
                  unsigned site_line);

/// Called before unlock(): pops the held entry (by mutex address).
void note_release(const void* mutex) noexcept;

/// CondVar support: remove `mutex` from the held stack for the duration
/// of the wait (reporting kWaitWithLocksHeld if others remain), returning
/// an opaque token; re-push and re-check ordering with wait_end().
struct WaitToken {
  bool found = false;
  std::uint32_t cls = 0;
  const char* site_file = nullptr;
  unsigned site_line = 0;
};
[[nodiscard]] WaitToken wait_begin(const void* mutex);
void wait_end(const void* mutex, const WaitToken& token);

/// Report if the calling thread holds any lock: `what` names the blocking
/// operation ("fsync", "recv", ...). One report per (top held class,
/// operation) pair — storms collapse to their first instance.
void check_blocking(const char* what);

#else  // !RELDEV_LOCKDEP — every hook is a free inline no-op.

inline void check_blocking(const char*) {}

#endif  // RELDEV_LOCKDEP

}  // namespace reldev::lockdep
