// Statistics used by the simulator and the benchmark harness:
//   OnlineStats       - Welford mean/variance over samples
//   TimeWeightedStat  - integral-average of a piecewise-constant signal
//                       (the estimator for steady-state availability)
//   BatchMeans        - batch-means confidence intervals for DES output
//   Histogram         - fixed-bin counts with quantile queries
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reldev {

/// Numerically stable running mean and variance.
class OnlineStats {
 public:
  void add(double sample) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-average of a signal that changes value at known instants.
/// Used to measure availability: record(t, 1 or 0) at every state change,
/// then average() over the observed horizon.
class TimeWeightedStat {
 public:
  /// Record that the signal took `value` starting at time `now`.
  /// Times must be non-decreasing.
  void record(double now, double value);

  /// Close the observation window at `now` and return the time average.
  [[nodiscard]] double average(double now) const;

  [[nodiscard]] double start_time() const noexcept { return start_; }
  [[nodiscard]] bool empty() const noexcept { return !started_; }

 private:
  bool started_ = false;
  double start_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Batch-means interval estimation for steady-state simulation output.
/// Feed per-batch averages; query a (1-alpha) confidence half-width using
/// a normal approximation (adequate for >= 20 batches).
class BatchMeans {
 public:
  void add_batch(double batch_mean) { stats_.add(batch_mean); }
  [[nodiscard]] std::size_t batches() const noexcept { return stats_.count(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  /// Half-width of the confidence interval; z defaults to 1.96 (95%).
  [[nodiscard]] double half_width(double z = 1.96) const;

 private:
  OnlineStats stats_;
};

/// Equal-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample) noexcept;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

  /// Value below which `q` (0..1) of the samples fall, by linear
  /// interpolation within the containing bin.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace reldev
