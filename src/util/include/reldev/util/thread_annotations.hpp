// Clang Thread Safety Analysis support: capability attribute macros that
// compile to nothing on other compilers, plus annotated synchronization
// primitives (Mutex, MutexLock, CondVar) the whole library uses instead of
// raw std::mutex. With clang and -Wthread-safety the lock discipline —
// which mutex guards which field, which helpers require a lock already
// held — becomes a compile-time proof instead of something TSan has to
// catch dynamically (and only on the schedules a test happens to run).
//
// Conventions (see DESIGN.md §10):
//   * every shared mutable field carries RELDEV_GUARDED_BY(mutex_);
//   * private helpers that assume the lock is held are named *_locked()
//     and annotated RELDEV_REQUIRES(mutex_);
//   * public entry points that take the lock themselves are annotated
//     RELDEV_EXCLUDES(mutex_) so calling them with the lock held is a
//     compile error (self-deadlock caught statically);
//   * long-running work (network calls, sleeps, user callbacks) is never
//     performed while holding a Mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "reldev/util/assert.hpp"

// With RELDEV_LOCKDEP (cmake option; Debug/CI builds) every Mutex also
// feeds the runtime lock-order checker: mutexes get *class* identities
// (an explicit name, or the construction site), acquisitions build a
// global ordering graph with cycle detection, and the raw-I/O paths
// refuse to block while a lock is held. See lockdep.hpp / DESIGN.md §15.
#if defined(RELDEV_LOCKDEP)
#include <source_location>

#include "reldev/util/lockdep.hpp"
#endif

// ---------------------------------------------------------------------------
// Attribute macros. Real attributes under clang; no-ops everywhere else, so
// GCC builds are untouched and annotation mistakes cannot break tier-1.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define RELDEV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RELDEV_THREAD_ANNOTATION__(x)
#endif

/// Marks a type as a capability (a lock, in this library).
#define RELDEV_CAPABILITY(x) RELDEV_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define RELDEV_SCOPED_CAPABILITY RELDEV_THREAD_ANNOTATION__(scoped_lockable)

/// The field is only read or written while holding the given mutex.
#define RELDEV_GUARDED_BY(x) RELDEV_THREAD_ANNOTATION__(guarded_by(x))

/// The pointee is only dereferenced while holding the given mutex.
#define RELDEV_PT_GUARDED_BY(x) RELDEV_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations between mutexes (deadlock prevention).
#define RELDEV_ACQUIRED_BEFORE(...) \
  RELDEV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define RELDEV_ACQUIRED_AFTER(...) \
  RELDEV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function must be called with the given capabilities held.
#define RELDEV_REQUIRES(...) \
  RELDEV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define RELDEV_REQUIRES_SHARED(...) \
  RELDEV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the given capabilities itself.
#define RELDEV_ACQUIRE(...) \
  RELDEV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RELDEV_RELEASE(...) \
  RELDEV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELDEV_TRY_ACQUIRE(...) \
  RELDEV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The function must be called with the given capabilities NOT held.
#define RELDEV_EXCLUDES(...) \
  RELDEV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime claim that the capability is held; the analysis trusts it from
/// here on. Our Mutex::assert_held() backs the claim with a real check.
#define RELDEV_ASSERT_CAPABILITY(x) \
  RELDEV_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the given capability.
#define RELDEV_RETURN_CAPABILITY(x) RELDEV_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's lock discipline is intentionally outside
/// what the analysis can follow. Use sparingly and say why at the site.
#define RELDEV_NO_THREAD_SAFETY_ANALYSIS \
  RELDEV_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace reldev {

// ---------------------------------------------------------------------------
// Annotated primitives.
// ---------------------------------------------------------------------------

/// std::mutex with the capability attribute and a real assert_held(). The
/// holder is tracked with one relaxed atomic store per lock/unlock — cheap
/// enough to keep in every build, and it turns RELDEV_ASSERT_CAPABILITY
/// from a pure compile-time claim into a runtime contract check
/// (ContractViolation on failure, like every other contract in this
/// library).
class RELDEV_CAPABILITY("mutex") Mutex {
 public:
#if defined(RELDEV_LOCKDEP)
  /// Lockdep class identity: mutexes sharing a `name` (or, unnamed, a
  /// construction site) form one class, so one run's ordering facts
  /// generalize over every instance. Name long-lived mutexes after their
  /// owner ("BlockCache.mutex"); locals may rely on the site default.
  explicit Mutex(const char* name = nullptr,
                 std::source_location site = std::source_location::current())
      : ld_name_(name), ld_file_(site.file_name()), ld_line_(site.line()) {}
#else
  Mutex() = default;
  /// Lockdep class name; inert in this configuration (kept so naming a
  /// mutex does not need an #ifdef at the declaration site).
  explicit Mutex(const char* /*name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(RELDEV_LOCKDEP)
  void lock(std::source_location site = std::source_location::current())
      RELDEV_ACQUIRE() {
    const std::uint32_t cls = ld_class();
    lockdep::pre_acquire(this, cls, site.file_name(), site.line());
    mutex_.lock();
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lockdep::post_acquire(this, cls, site.file_name(), site.line());
  }

  void unlock() RELDEV_RELEASE() {
    lockdep::note_release(this);
    holder_.store(std::thread::id{}, std::memory_order_relaxed);
    mutex_.unlock();
  }

  [[nodiscard]] bool try_lock(
      std::source_location site = std::source_location::current())
      RELDEV_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    // A try-lock can never participate in a deadlock (it backs off), so
    // no pre_acquire ordering check — but it is held from here on, so it
    // does join the stack for later edges and blocking checks.
    lockdep::post_acquire(this, ld_class(), site.file_name(), site.line());
    return true;
  }
#else
  void lock() RELDEV_ACQUIRE() {
    mutex_.lock();
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void unlock() RELDEV_RELEASE() {
    holder_.store(std::thread::id{}, std::memory_order_relaxed);
    mutex_.unlock();
  }

  [[nodiscard]] bool try_lock() RELDEV_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }
#endif

  /// True iff the calling thread currently holds this mutex.
  [[nodiscard]] bool held_by_caller() const noexcept {
    return holder_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  /// Contract check: the calling thread holds the lock. Under clang this
  /// also tells the analysis the capability is held from here on.
  void assert_held() const RELDEV_ASSERT_CAPABILITY(this) {
    RELDEV_ASSERT(held_by_caller());
  }

 private:
  friend class CondVar;

#if defined(RELDEV_LOCKDEP)
  /// Lazily interned lockdep class id (0 = not yet registered). Racing
  /// registrations are benign: register_class is idempotent per key.
  std::uint32_t ld_class() noexcept {
    std::uint32_t cls = ld_class_.load(std::memory_order_acquire);
    if (cls == 0) {
      cls = lockdep::register_class(ld_name_, ld_file_, ld_line_);
      ld_class_.store(cls, std::memory_order_release);
    }
    return cls;
  }

  const char* ld_name_;
  const char* ld_file_;
  unsigned ld_line_;
  std::atomic<std::uint32_t> ld_class_{0};
#endif

  std::mutex mutex_;
  std::atomic<std::thread::id> holder_{};
};

/// RAII lock over a Mutex (the annotated lock_guard). The scoped-capability
/// attribute lets the analysis treat the guard's lifetime as the span the
/// mutex is held.
class RELDEV_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(RELDEV_LOCKDEP)
  /// The guard's construction site is the acquisition site lockdep shows
  /// in held-lock chains (source_location defaults to the caller).
  explicit MutexLock(Mutex& mutex,
                     std::source_location site = std::source_location::current())
      RELDEV_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(site);
  }
#else
  explicit MutexLock(Mutex& mutex) RELDEV_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
#endif
  ~MutexLock() RELDEV_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable usable with Mutex. Waits are annotated REQUIRES: the
/// caller must hold the mutex, and (as with std::condition_variable) the
/// wait releases it while sleeping and reacquires before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) RELDEV_REQUIRES(mutex) {
    // Lockdep: the mutex leaves the held stack while the wait sleeps (it
    // really is released) and is re-pushed — with ordering re-checked —
    // on wake. Waiting with *other* locks held is reported.
#if defined(RELDEV_LOCKDEP)
    const lockdep::WaitToken token = lockdep::wait_begin(&mutex);
#endif
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    mutex.holder_.store(std::thread::id{}, std::memory_order_relaxed);
    cv_.wait(native);
    mutex.holder_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
    native.release();  // the caller's MutexLock still owns the mutex
#if defined(RELDEV_LOCKDEP)
    lockdep::wait_end(&mutex, token);
#endif
  }

  /// Returns false if `timeout` elapsed without a notification.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mutex, std::chrono::duration<Rep, Period> timeout)
      RELDEV_REQUIRES(mutex) {
#if defined(RELDEV_LOCKDEP)
    const lockdep::WaitToken token = lockdep::wait_begin(&mutex);
#endif
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    mutex.holder_.store(std::thread::id{}, std::memory_order_relaxed);
    const auto status = cv_.wait_for(native, timeout);
    mutex.holder_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
    native.release();
#if defined(RELDEV_LOCKDEP)
    lockdep::wait_end(&mutex, token);
#endif
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace reldev
