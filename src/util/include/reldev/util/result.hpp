// Status and Result<T>: value-or-error types used across the library for
// recoverable failures (unavailable replicas, I/O errors, malformed
// messages). Exceptions are reserved for contract violations and
// constructor failures; expected runtime outcomes flow through Result.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "reldev/util/assert.hpp"

namespace reldev {

/// Coarse error taxonomy shared by every module.
enum class ErrorCode {
  kOk = 0,
  kUnavailable,      // not enough live/available replicas (quorum failure)
  kNotFound,         // no such block / file / site
  kInvalidArgument,  // caller error detected at a module boundary
  kIoError,          // underlying storage or socket failure
  kCorruption,       // checksum mismatch or malformed persistent state
  kProtocol,         // malformed or unexpected network message
  kTimeout,          // operation deadline exceeded
  kConflict,         // concurrent-update or state conflict
  kInternal,         // invariant violation reported as a value
};

/// Human-readable name of an ErrorCode ("unavailable", "io-error", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// An error code plus a context message. A default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "unavailable: quorum not reached (2 of 5 up)" or "ok".
  [[nodiscard]] std::string to_string() const;

  /// Explicitly discard this status. The sanctioned spelling for call
  /// sites where failure is genuinely acceptable (best-effort sends,
  /// cleanup paths); the reldev-result-discard tidy check flags bare and
  /// `(void)`-cast discards and points here, so every ignored error is a
  /// deliberate, greppable decision.
  void ignore_error() const noexcept {}

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value of T or a non-OK Status. Access to the wrong alternative
/// is a contract violation.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    RELDEV_EXPECTS(!std::get<Status>(state_).is_ok());
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    RELDEV_EXPECTS(is_ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    RELDEV_EXPECTS(is_ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    RELDEV_EXPECTS(is_ok());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(state_);
  }

  /// value() if OK, otherwise the supplied fallback.
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(state_) : std::move(fallback);
  }

  /// Explicitly discard this result (value and error alike); see
  /// Status::ignore_error().
  void ignore_error() const noexcept {}

 private:
  std::variant<T, Status> state_;
};

/// Convenience factories so call sites read as errors::unavailable("...").
namespace errors {
inline Status unavailable(std::string m) {
  return {ErrorCode::kUnavailable, std::move(m)};
}
inline Status not_found(std::string m) {
  return {ErrorCode::kNotFound, std::move(m)};
}
inline Status invalid_argument(std::string m) {
  return {ErrorCode::kInvalidArgument, std::move(m)};
}
inline Status io_error(std::string m) {
  return {ErrorCode::kIoError, std::move(m)};
}
inline Status corruption(std::string m) {
  return {ErrorCode::kCorruption, std::move(m)};
}
inline Status protocol(std::string m) {
  return {ErrorCode::kProtocol, std::move(m)};
}
inline Status timeout(std::string m) {
  return {ErrorCode::kTimeout, std::move(m)};
}
inline Status conflict(std::string m) {
  return {ErrorCode::kConflict, std::move(m)};
}
inline Status internal(std::string m) {
  return {ErrorCode::kInternal, std::move(m)};
}
}  // namespace errors

}  // namespace reldev
