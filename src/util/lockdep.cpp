#include "reldev/util/lockdep.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>  // NOLINT(reldev-no-raw-std-mutex) -- the checker's own
                  // bookkeeping lock must not recurse into the checker.
#include <utility>

#if defined(RELDEV_LOCKDEP)
#include <execinfo.h>

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#endif

namespace reldev::lockdep {

namespace {

std::atomic<std::uint64_t> g_violations{0};

std::mutex& handler_mutex() {
  static std::mutex m;
  return m;
}

std::function<void(const Violation&)>& handler_slot() {
  static std::function<void(const Violation&)> slot;
  return slot;
}

[[noreturn]] void default_handler(const Violation& violation) {
  std::fprintf(stderr, "%s\n", violation.text.c_str());
  std::fflush(stderr);
  std::abort();
}

void emit(Violation violation) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  std::function<void(const Violation&)> handler;
  {
    const std::lock_guard<std::mutex> lock(handler_mutex());  // NOLINT
    handler = handler_slot();
  }
  if (handler) {
    handler(violation);
  } else {
    default_handler(violation);
  }
}

struct ThreadFlags {
  int in_hook = 0;        // re-entrancy guard (handler taking locks, ...)
  int allow_blocking = 0; // AllowBlocking scope depth
};

ThreadFlags& flags() {
  thread_local ThreadFlags f;
  return f;
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kOrderInversion:
      return "order-inversion";
    case ViolationKind::kBlockingUnderLock:
      return "blocking-under-lock";
    case ViolationKind::kWaitWithLocksHeld:
      return "wait-with-locks-held";
  }
  return "unknown";
}

std::uint64_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

void set_handler(std::function<void(const Violation&)> handler) {
  const std::lock_guard<std::mutex> lock(handler_mutex());  // NOLINT
  handler_slot() = std::move(handler);
}

AllowBlocking::AllowBlocking(const char* reason) noexcept : reason_(reason) {
  (void)reason_;
  ++flags().allow_blocking;
}

AllowBlocking::~AllowBlocking() { --flags().allow_blocking; }

#if !defined(RELDEV_LOCKDEP)

bool enabled() noexcept { return false; }
int held_count() noexcept { return 0; }
void reset() { g_violations.store(0, std::memory_order_relaxed); }

#else  // RELDEV_LOCKDEP

namespace {

/// One lock the current thread holds.
struct HeldLock {
  const void* mutex;
  std::uint32_t cls;
  const char* site_file;
  unsigned site_line;
};

std::vector<HeldLock>& held() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

struct ClassInfo {
  std::string label;  // "name" or "file:line"
};

/// A recorded ordering: some thread once acquired `to` while holding
/// `from`, at this stack, with this full held chain.
struct EdgeInfo {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::string chain;  // held locks at record time, one per line
  std::string stack;  // symbolized backtrace at record time
};

constexpr std::uint64_t edge_key(std::uint32_t from, std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// Global state, allocated once and deliberately leaked: mutexes are
/// locked during static destruction (logging, pools), and the checker
/// must outlive all of them.
struct Graph {
  std::mutex mutex;  // NOLINT(reldev-no-raw-std-mutex) -- see file header
  std::vector<ClassInfo> classes;  // index = class id - 1
  std::unordered_map<std::string, std::uint32_t> by_key;
  std::unordered_map<std::uint64_t, EdgeInfo> edges;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adjacency;
  std::unordered_set<std::uint64_t> reported_inversions;
  std::unordered_set<std::string> reported_blocking;
};

Graph& graph() {
  static Graph* g = new Graph;
  return *g;
}

/// Symbolized backtrace of the caller, skipping `skip` innermost frames
/// (the capture machinery itself).
std::string capture_stack(int skip) {
  void* frames[32];
  const int depth = ::backtrace(frames, 32);
  if (depth <= skip) return "    <no stack>";
  char** symbols = ::backtrace_symbols(frames + skip, depth - skip);
  std::ostringstream out;
  for (int i = 0; i < depth - skip; ++i) {
    out << "    #" << i << ' '
        << (symbols != nullptr ? symbols[i] : "<unknown>");
    if (i + 1 < depth - skip) out << '\n';
  }
  std::free(symbols);  // NOLINT(cppcoreguidelines-no-malloc)
  return out.str();
}

/// Requires graph().mutex held.
std::string class_label_locked(const Graph& g, std::uint32_t cls) {
  if (cls == 0 || cls > g.classes.size()) return "<unregistered>";
  return g.classes[cls - 1].label;
}

/// Requires graph().mutex held. The current thread's held chain, one lock
/// per line, innermost last.
std::string describe_held_locked(const Graph& g) {
  std::ostringstream out;
  const auto& stack = held();
  for (std::size_t i = 0; i < stack.size(); ++i) {
    out << "    #" << i << ' ' << class_label_locked(g, stack[i].cls)
        << " (locked at " << stack[i].site_file << ':' << stack[i].site_line
        << ')';
    if (i + 1 < stack.size()) out << '\n';
  }
  if (stack.empty()) out << "    <none>";
  return out.str();
}

/// Requires graph().mutex held. True iff `to` can reach `target` through
/// recorded edges; fills `path` with the class chain to -> ... -> target.
bool find_path_locked(const Graph& g, std::uint32_t to, std::uint32_t target,
                      std::vector<std::uint32_t>& path) {
  if (to == target) {
    path.push_back(to);
    return true;
  }
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::vector<std::uint32_t> frontier{to};
  parent[to] = to;
  while (!frontier.empty()) {
    const std::uint32_t node = frontier.back();
    frontier.pop_back();
    const auto it = g.adjacency.find(node);
    if (it == g.adjacency.end()) continue;
    for (const std::uint32_t next : it->second) {
      if (parent.contains(next)) continue;
      parent[next] = node;
      if (next == target) {
        for (std::uint32_t walk = target; walk != to; walk = parent[walk]) {
          path.push_back(walk);
        }
        path.push_back(to);
        std::reverse(path.begin(), path.end());
        return true;
      }
      frontier.push_back(next);
    }
  }
  return false;
}

struct ScopedHook {
  ScopedHook() { ++flags().in_hook; }
  ~ScopedHook() { --flags().in_hook; }
};

}  // namespace

bool enabled() noexcept { return true; }

int held_count() noexcept { return static_cast<int>(held().size()); }

void reset() {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mutex);  // NOLINT
  g.edges.clear();
  g.adjacency.clear();
  g.reported_inversions.clear();
  g.reported_blocking.clear();
  held().clear();
  g_violations.store(0, std::memory_order_relaxed);
}

std::uint32_t register_class(const char* name, const char* file,
                             unsigned line) {
  std::string key;
  if (name != nullptr) {
    key = name;
  } else {
    key = std::string(file != nullptr ? file : "<unknown>") + ':' +
          std::to_string(line);
  }
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mutex);  // NOLINT
  if (const auto it = g.by_key.find(key); it != g.by_key.end()) {
    return it->second;
  }
  g.classes.push_back(ClassInfo{key});
  const auto id = static_cast<std::uint32_t>(g.classes.size());
  g.by_key.emplace(std::move(key), id);
  return id;
}

void pre_acquire(const void* mutex, std::uint32_t cls, const char* site_file,
                 unsigned site_line) {
  (void)mutex;
  if (flags().in_hook > 0 || held().empty()) return;
  const ScopedHook hook;
  // Nested acquisition: every held lock is a would-be edge. Capture the
  // stack once up front — this path only runs while >= 1 lock is held,
  // which is rare by the library's own conventions.
  const std::string stack = capture_stack(/*skip=*/3);
  std::vector<Violation> pending;
  {
    Graph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mutex);  // NOLINT
    const std::string chain = describe_held_locked(g);
    for (const HeldLock& h : held()) {
      if (h.cls == cls) continue;  // same-class nesting is not an ordering
      const std::uint64_t key = edge_key(h.cls, cls);
      if (g.edges.contains(key)) continue;
      std::vector<std::uint32_t> path;
      if (find_path_locked(g, cls, h.cls, path)) {
        if (!g.reported_inversions.insert(key).second) continue;
        std::ostringstream out;
        out << "lockdep: ORDER INVERSION (potential deadlock)\n"
            << "  thread is acquiring " << class_label_locked(g, cls)
            << " at " << site_file << ':' << site_line << "\n"
            << "  while holding:\n"
            << chain << "\n"
            << "  this acquisition stack:\n"
            << stack << "\n"
            << "  but the opposite order " << class_label_locked(g, cls);
        for (std::size_t i = 1; i < path.size(); ++i) {
          out << " -> " << class_label_locked(g, path[i]);
        }
        out << " was recorded earlier:";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const auto it = g.edges.find(edge_key(path[i], path[i + 1]));
          if (it == g.edges.end()) continue;
          out << "\n  edge " << class_label_locked(g, path[i]) << " -> "
              << class_label_locked(g, path[i + 1]) << " held chain:\n"
              << it->second.chain << "\n"
              << "  recorded acquisition stack:\n"
              << it->second.stack;
        }
        pending.push_back(
            Violation{ViolationKind::kOrderInversion, out.str()});
        continue;  // do not record the inverted edge
      }
      EdgeInfo edge;
      edge.from = h.cls;
      edge.to = cls;
      edge.chain = chain;
      edge.stack = stack;
      g.edges.emplace(key, std::move(edge));
      g.adjacency[h.cls].push_back(cls);
    }
  }
  for (Violation& violation : pending) emit(std::move(violation));
}

void post_acquire(const void* mutex, std::uint32_t cls, const char* site_file,
                  unsigned site_line) {
  if (flags().in_hook > 0) return;
  held().push_back(HeldLock{mutex, cls, site_file, site_line});
}

void note_release(const void* mutex) noexcept {
  if (flags().in_hook > 0) return;
  auto& stack = held();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mutex == mutex) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

WaitToken wait_begin(const void* mutex) {
  WaitToken token;
  if (flags().in_hook > 0) return token;
  auto& stack = held();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mutex == mutex) {
      token.found = true;
      token.cls = it->cls;
      token.site_file = it->site_file;
      token.site_line = it->site_line;
      stack.erase(std::next(it).base());
      break;
    }
  }
  if (!token.found || stack.empty()) return token;
  // Sleeping on a condition while other locks stay held parks those locks
  // for an unbounded time — every waiter for them inherits this wait.
  const ScopedHook hook;
  const std::string stack_text = capture_stack(/*skip=*/3);
  std::string text;
  bool fresh = false;
  {
    Graph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mutex);  // NOLINT
    std::ostringstream out;
    out << "lockdep: CondVar wait on " << class_label_locked(g, token.cls)
        << " with other lock(s) held\n"
        << "  still held while sleeping:\n"
        << describe_held_locked(g) << "\n"
        << "  wait stack:\n"
        << stack_text;
    text = out.str();
    fresh = g.reported_blocking
                .insert("wait:" + class_label_locked(g, token.cls))
                .second;
  }
  if (fresh) emit(Violation{ViolationKind::kWaitWithLocksHeld, text});
  return token;
}

void wait_end(const void* mutex, const WaitToken& token) {
  if (!token.found || flags().in_hook > 0) return;
  // Waking reacquires the mutex while everything else the thread held is
  // still held — a genuine (re)acquisition for ordering purposes.
  pre_acquire(mutex, token.cls, token.site_file, token.site_line);
  held().push_back(
      HeldLock{mutex, token.cls, token.site_file, token.site_line});
}

void check_blocking(const char* what) {
  ThreadFlags& f = flags();
  if (f.in_hook > 0 || f.allow_blocking > 0 || held().empty()) return;
  const ScopedHook hook;
  const std::string stack_text = capture_stack(/*skip=*/3);
  std::string text;
  bool fresh = false;
  {
    Graph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mutex);  // NOLINT
    const std::string top = class_label_locked(g, held().back().cls);
    fresh = g.reported_blocking.insert(std::string(what) + '@' + top).second;
    std::ostringstream out;
    out << "lockdep: BLOCKING CALL UNDER LOCK (" << what << ")\n"
        << "  held:\n"
        << describe_held_locked(g) << "\n"
        << "  blocking call stack:\n"
        << stack_text;
    text = out.str();
  }
  if (fresh) emit(Violation{ViolationKind::kBlockingUnderLock, text});
}

#endif  // RELDEV_LOCKDEP

}  // namespace reldev::lockdep
