#include "reldev/util/rng.hpp"

#include <cmath>

namespace reldev {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from SplitMix64 as the xoshiro authors
  // recommend; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  RELDEV_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + draw % bound;
}

double Rng::uniform(double lo, double hi) noexcept {
  RELDEV_EXPECTS(lo < hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) {
  RELDEV_EXPECTS(rate > 0.0);
  // Inversion; 1 - U avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

bool Rng::bernoulli(double p) {
  RELDEV_EXPECTS(p >= 0.0 && p <= 1.0);
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

}  // namespace reldev
