// MiniFS on the reliable device: the same unmodified file system code runs
// on a plain local disk and on a 3-way replicated device; files written
// before a site crash remain readable, and a recovered site serves them.
#include <cstring>
#include <iostream>

#include "reldev/core/group.hpp"
#include "reldev/fs/minifs.hpp"
#include "reldev/storage/mem_block_store.hpp"

using namespace reldev;

namespace {

std::vector<std::byte> from_text(const std::string& text) {
  std::vector<std::byte> data(text.size());
  std::memcpy(data.data(), text.data(), text.size());
  return data;
}

std::string to_text(const std::vector<std::byte>& data) {
  return {reinterpret_cast<const char*>(data.data()), data.size()};
}

void show_listing(fs::MiniFs& filesystem, const std::string& label) {
  std::cout << "  " << label << ":\n";
  // Keep the Result alive for the whole loop: iterating a temporary's
  // innards directly would dangle in C++20.
  const auto files = filesystem.list().value();
  for (const auto& info : files) {
    std::cout << "    " << info.name << "  (" << info.size << " bytes, "
              << info.blocks << " blocks)\n";
  }
}

}  // namespace

int main() {
  std::cout << "MiniFS demo — the file system never changes; the device "
               "does.\n\n";

  // Act 1: MiniFS on an ordinary local disk.
  std::cout << "[1] MiniFS on a single local disk\n";
  storage::MemBlockStore disk(256, 512);
  core::LocalBlockDevice local(disk);
  auto local_fs = fs::MiniFs::format(local).value();
  (void)local_fs.write_file("readme.txt", from_text("plain disk, no magic"));
  show_listing(local_fs, "local disk listing");

  // Act 2: the exact same file-system code on a replicated device.
  std::cout << "\n[2] The same MiniFS on a 3-way replicated reliable device\n";
  core::ReplicaGroup group(core::SchemeKind::kAvailableCopy,
                           core::GroupConfig::majority(3, 256, 512));
  core::ReplicaDevice reliable(group.replica(0));
  auto replicated_fs = fs::MiniFs::format(reliable).value();
  (void)replicated_fs.write_file("paper.txt",
                                 from_text("Block-Level Consistency of "
                                           "Replicated Files (ICDCS 1987)"));
  (void)replicated_fs.write_file("notes.md",
                                 from_text("# notes\nwrite-all, read-local"));
  show_listing(replicated_fs, "replicated device listing");

  // Act 3: a site dies mid-use.
  std::cout << "\n[3] site 2 crashes; the file system never notices\n";
  group.crash_site(2);
  (void)replicated_fs.write_file("during_outage.txt",
                                 from_text("still writable with 2 of 3"));
  std::cout << "  read paper.txt -> \""
            << to_text(replicated_fs.read_file("paper.txt").value())
            << "\"\n";

  // Act 4: mount the file system from a different replica.
  std::cout << "\n[4] mount the same blocks from site 1's replica\n";
  core::ReplicaDevice device1(group.replica(1));
  auto fs_via_1 = fs::MiniFs::mount(device1).value();
  show_listing(fs_via_1, "listing via site 1");

  // Act 5: the failed site recovers and serves everything.
  std::cout << "\n[5] site 2 recovers and catches up\n";
  (void)group.recover_site(2);
  core::ReplicaDevice device2(group.replica(2));
  auto fs_via_2 = fs::MiniFs::mount(device2).value();
  std::cout << "  during_outage.txt via recovered site 2 -> \""
            << to_text(fs_via_2.read_file("during_outage.txt").value())
            << "\"\n";

  std::cout << "\ndone: one file system implementation, three devices, zero "
               "modifications.\n";
  return 0;
}
