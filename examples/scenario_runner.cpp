// Run a failure-scenario script against a replica group and print the
// transcript. With no arguments, runs a built-in demonstration of the
// §4.4 total-failure story.
//
//   ./scenario_runner my_scenario.txt
//   ./scenario_runner --transcript=false regression.txt
#include <fstream>
#include <iostream>
#include <sstream>

#include "reldev/core/scenario.hpp"
#include "reldev/util/flags.hpp"

using namespace reldev;

namespace {

constexpr const char* kDemoScript = R"(# Built-in demo: the available-copy
# total-failure story of section 4.4.
scheme available-copy
sites 3
crash 2
write 0 0 v1
crash 1
write 0 0 v2          # only site 0 holds this
crash 0               # total failure; failure order was 2, 1, 0
expect-available false
comeback 2            # failed FIRST: must wait (stale was-available set)
expect-state 2 comatose
comeback 1
expect-state 1 comatose
recover 0             # failed LAST: recovers alone, unblocks the others
expect-state 1 available
expect-state 2 available
read 2 0 v2           # nothing acknowledged was lost
)";

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_bool("transcript", true, "print the per-step transcript");
  flags.add_bool("print-script", false, "echo the script before running");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("scenario_runner")
              << "positional: path to a scenario script (omit for the "
                 "built-in demo)\n";
    return 0;
  }

  std::string script;
  if (flags.positional().empty()) {
    script = kDemoScript;
    std::cout << "(no script given; running the built-in §4.4 demo)\n\n";
  } else {
    std::ifstream file(flags.positional()[0]);
    if (!file) {
      std::cerr << "cannot open " << flags.positional()[0] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    script = buffer.str();
  }
  if (flags.get_bool("print-script")) {
    std::cout << script << '\n';
  }

  auto scenario = core::Scenario::parse(script);
  if (!scenario) {
    std::cerr << "parse error: " << scenario.status().to_string() << '\n';
    return 1;
  }
  std::cout << "scheme=" << core::scheme_kind_name(scenario.value().scheme)
            << " sites=" << scenario.value().sites
            << " blocks=" << scenario.value().blocks << "  ("
            << scenario.value().steps.size() << " steps)\n";

  auto outcome = core::run_scenario(scenario.value());
  if (flags.get_bool("transcript") && outcome.is_ok()) {
    for (const auto& line : outcome.value().transcript) {
      std::cout << "  " << line << '\n';
    }
  }
  if (!outcome) {
    std::cerr << "SCENARIO FAILED: " << outcome.status().to_string() << '\n';
    return 1;
  }
  std::cout << "scenario passed (" << outcome.value().steps_executed
            << " steps)\n";
  return 0;
}
