// Scripted failure scenarios contrasting the three consistency schemes —
// in particular §4.4's total-failure story: after every site has crashed,
// conventional available copy returns to service as soon as the *last*
// site to fail is back, while the naive scheme must wait for all of them
// and voting only needs any majority.
#include <cstring>
#include <iostream>

#include "reldev/core/available_copy_replica.hpp"
#include "reldev/core/group.hpp"

using namespace reldev;
using core::ReplicaGroup;
using core::SchemeKind;

namespace {

storage::BlockData from_text(const std::string& text, std::size_t block_size) {
  storage::BlockData data(block_size, std::byte{0});
  std::memcpy(data.data(), text.data(), std::min(text.size(), block_size));
  return data;
}

void print_states(const ReplicaGroup& group) {
  std::cout << "    site states:";
  const auto states = group.states();
  for (std::size_t s = 0; s < states.size(); ++s) {
    std::cout << "  " << s << "=" << net::site_state_name(states[s]);
  }
  std::cout << '\n';
}

void total_failure_scenario(SchemeKind scheme) {
  std::cout << "== total failure under " << core::scheme_kind_name(scheme)
            << " ==\n";
  ReplicaGroup group(scheme, core::GroupConfig::majority(3, 8, 128));

  // Failure order 2, 1, 0 with a write between each failure, so the
  // surviving sites always hold newer data. Site 0 fails LAST.
  group.crash_site(2);
  (void)group.write(0, 0, from_text("v1", 128));
  group.crash_site(1);
  (void)group.write(0, 0, from_text("v2 - only site 0 has this", 128));
  group.crash_site(0);
  std::cout << "  all sites are down; failure order was 2, 1, 0\n";

  // Sites return in the WORST order: the one that failed first comes
  // back first.
  group.transport().set_up(2, true);
  auto status = group.replica(2).recover();
  std::cout << "  site 2 returns -> recover(): " << status.to_string() << '\n';
  print_states(group);

  group.transport().set_up(1, true);
  status = group.replica(1).recover();
  std::cout << "  site 1 returns -> recover(): " << status.to_string() << '\n';
  print_states(group);
  std::cout << "    device available? " << std::boolalpha
            << group.group_available() << '\n';

  status = group.recover_site(0);
  std::cout << "  site 0 (failed last) returns -> recover(): "
            << status.to_string() << '\n';
  print_states(group);
  std::cout << "    device available? " << group.group_available() << '\n';
  auto read = group.read(1, 0);
  if (read.is_ok()) {
    std::cout << "    block 0 via site 1: \""
              << reinterpret_cast<const char*>(read.value().data()) << "\"\n";
  }
  std::cout << '\n';
}

void last_site_alone_scenario() {
  std::cout << "== the conventional scheme's edge: last site recovers alone "
               "==\n";
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     core::GroupConfig::majority(3, 8, 128));
  group.crash_site(1);
  group.crash_site(2);
  (void)group.write(0, 0, from_text("final state", 128));
  group.crash_site(0);
  std::cout << "  sites 1, 2 failed first; site 0 wrote, then failed last\n";

  group.transport().set_up(0, true);
  const auto status = group.replica(0).recover();
  std::cout << "  only site 0 returns -> recover(): " << status.to_string()
            << "  (device available: " << std::boolalpha
            << group.group_available() << ")\n";
  std::cout << "  -> the was-available set W_0 = {0} proved that site 0 "
               "failed last,\n     so it restored service without waiting "
               "for anyone.\n";

  std::cout << "  the naive scheme in the same situation:\n";
  ReplicaGroup naive(SchemeKind::kNaiveAvailableCopy,
                     core::GroupConfig::majority(3, 8, 128));
  naive.crash_site(1);
  naive.crash_site(2);
  (void)naive.write(0, 0, from_text("final state", 128));
  naive.crash_site(0);
  naive.transport().set_up(0, true);
  const auto naive_status = naive.replica(0).recover();
  std::cout << "  only site 0 returns -> recover(): "
            << naive_status.to_string()
            << "  (device available: " << naive.group_available() << ")\n";
  std::cout << "  -> without failure-order information it must wait for all "
               "sites.\n\n";
}

void partition_scenario() {
  std::cout << "== network partition: why voting still matters ==\n";
  ReplicaGroup group(SchemeKind::kVoting,
                     core::GroupConfig::majority(5, 8, 128));
  (void)group.write(0, 0, from_text("agreed state", 128));
  // Split 2 vs 3.
  group.transport().set_partition_group(0, 1);
  group.transport().set_partition_group(1, 1);
  std::cout << "  partition {0,1} | {2,3,4}\n";
  std::cout << "  write via site 0 (minority): "
            << group.write(0, 0, from_text("minority!", 128)).to_string()
            << '\n';
  std::cout << "  write via site 3 (majority): "
            << group.write(3, 0, from_text("majority wins", 128)).to_string()
            << '\n';
  group.transport().clear_partitions();
  std::cout << "  partition heals; block 0 via site 0: \""
            << reinterpret_cast<const char*>(group.read(0, 0).value().data())
            << "\"\n";
  std::cout << "  -> at most one side of a partition can form a quorum, so "
               "no split-brain.\n     (The available-copy schemes assume "
               "partitions cannot happen.)\n\n";
}

}  // namespace

int main() {
  total_failure_scenario(SchemeKind::kAvailableCopy);
  total_failure_scenario(SchemeKind::kNaiveAvailableCopy);
  total_failure_scenario(SchemeKind::kVoting);
  last_site_alone_scenario();
  partition_scenario();
  return 0;
}
