// Quickstart: build a 3-site reliable device, write and read blocks, kill
// a site, keep working, recover it, and watch it catch up.
//
//   ./quickstart [--scheme=available-copy|naive-available-copy|voting]
#include <cstring>
#include <iostream>

#include "reldev/core/group.hpp"
#include "reldev/util/flags.hpp"

using namespace reldev;

namespace {

storage::BlockData from_text(const std::string& text, std::size_t block_size) {
  storage::BlockData data(block_size, std::byte{0});
  std::memcpy(data.data(), text.data(), std::min(text.size(), block_size));
  return data;
}

std::string to_text(const storage::BlockData& data) {
  std::string text(reinterpret_cast<const char*>(data.data()), data.size());
  return text.substr(0, text.find('\0'));
}

core::SchemeKind parse_scheme(const std::string& name) {
  if (name == "voting") return core::SchemeKind::kVoting;
  if (name == "naive-available-copy") {
    return core::SchemeKind::kNaiveAvailableCopy;
  }
  return core::SchemeKind::kAvailableCopy;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_string("scheme", "available-copy",
                   "consistency scheme: voting, available-copy, "
                   "naive-available-copy");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("quickstart");
    return 0;
  }

  const auto scheme = parse_scheme(flags.get_string("scheme"));
  std::cout << "Reliable device quickstart — scheme: "
            << core::scheme_kind_name(scheme) << "\n\n";

  // A replicated block device: 3 sites, 64 blocks of 512 bytes.
  core::ReplicaGroup group(scheme, core::GroupConfig::majority(3, 64, 512));

  // 1. Ordinary block I/O through site 0.
  std::cout << "write block 7 via site 0... ";
  auto status = group.write(0, 7, from_text("hello, replicated world", 512));
  std::cout << status.to_string() << '\n';

  std::cout << "read  block 7 via site 2... ";
  auto read = group.read(2, 7);
  std::cout << '"' << to_text(read.value()) << "\"\n\n";

  // 2. A site dies; the device keeps serving.
  std::cout << "site 1 crashes (fail-stop)\n";
  group.crash_site(1);
  std::cout << "write block 8 via site 0... "
            << group.write(0, 8, from_text("written during the outage", 512))
                   .to_string()
            << '\n';
  std::cout << "read  block 8 via site 2... \""
            << to_text(group.read(2, 8).value()) << "\"\n\n";

  // 3. The site returns and recovers the blocks it missed.
  std::cout << "site 1 repairs and recovers... "
            << group.recover_site(1).to_string() << '\n';
  std::cout << "site 1 state: "
            << net::site_state_name(group.replica(1).state()) << '\n';
  std::cout << "read  block 8 via site 1... \""
            << to_text(group.read(1, 8).value()) << "\"\n\n";

  // 4. Where did the traffic go?
  std::cout << "high-level transmissions so far: " << group.meter().total()
            << " (the naive scheme uses the fewest — try --scheme)\n";
  return 0;
}
