// One site server of the reliable device, as a standalone daemon — the
// "user-state server" of Figures 1 and 2. Run three of these, then point
// block_client at them:
//
//   ./reliable_device_daemon --site=0 --port=7000
//       --peers=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//       --scheme=available-copy --blocks=128 --block-size=512
//       --store=/tmp/site0.rdev
//   (one command line; wrapped here for readability)
//
// The peer list is positional: entry i is site i's address. The store file
// persists blocks, versions, and the was-available set across restarts;
// after a restart the daemon runs the scheme's recovery protocol against
// its peers before serving.
#include <algorithm>
#include <csignal>
#include <iostream>
#include <memory>

#include "reldev/core/available_copy_replica.hpp"
#include "reldev/core/naive_replica.hpp"
#include "reldev/core/scrub_daemon.hpp"
#include "reldev/core/voting_replica.hpp"
#include "reldev/net/fanout.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"
#include "reldev/storage/file_block_store.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/logging.hpp"

using namespace reldev;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

struct Endpoint {
  std::string host;
  std::uint16_t port;
};

Result<std::vector<Endpoint>> parse_peers(const std::string& text) {
  std::vector<Endpoint> peers;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    const auto colon = item.rfind(':');
    if (colon == std::string::npos) {
      return errors::invalid_argument("peer '" + item + "' is not host:port");
    }
    try {
      const int port = std::stoi(item.substr(colon + 1));
      if (port <= 0 || port > 65535) throw std::out_of_range("port");
      peers.push_back(
          Endpoint{item.substr(0, colon), static_cast<std::uint16_t>(port)});
    } catch (const std::exception&) {
      return errors::invalid_argument("bad port in peer '" + item + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (peers.empty()) return errors::invalid_argument("empty peer list");
  return peers;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("site", 0, "this site's id (index into --peers)");
  flags.add_int("port", 7000, "TCP port to listen on");
  flags.add_string("peers", "127.0.0.1:7000",
                   "comma-separated host:port list; entry i = site i");
  flags.add_string("scheme", "available-copy",
                   "voting | available-copy | naive-available-copy");
  flags.add_int("blocks", 128, "device size in blocks");
  flags.add_int("block-size", 512, "block size in bytes");
  flags.add_string("store", "", "path to the persistent store file "
                                "(empty = fresh in this run's tmp)");
  flags.add_int("call-timeout-ms", 5000,
                "per-peer RPC deadline: a dead peer costs at most this long");
  flags.add_string("server-mode", "reactor",
                   "server execution model: reactor | thread-per-conn");
  flags.add_int("loop-shards", 0,
                "reactor event-loop shards (0 = hardware concurrency)");
  flags.add_int("handler-threads", 0,
                "reactor handler worker threads (0 = auto)");
  flags.add_string("io-backend", "epoll",
                   "reactor loop backend: epoll | io_uring "
                   "(io_uring falls back to epoll when unavailable)");
  flags.add_int("fanout-threads", 0,
                "shared fan-out pool size (0 = max(8, hardware threads))");
  flags.add_int("scrub-interval", 0,
                "anti-entropy scrub cycle interval in ms (0 = scrubbing off)");
  flags.add_int("scrub-throttle", 0,
                "scrub byte budget (scan reads + healed payloads) in "
                "bytes/s; 0 = unthrottled");
  flags.add_bool("verbose", false, "debug logging");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n' << flags.usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  if (flags.get_bool("verbose")) {
    Logger::instance().set_level(LogLevel::kDebug);
  }

  auto peers = parse_peers(flags.get_string("peers"));
  if (!peers) {
    std::cerr << peers.status().to_string() << '\n';
    return 1;
  }
  const auto site = static_cast<storage::SiteId>(flags.get_int("site"));
  const auto n = peers.value().size();
  if (site >= n) {
    std::cerr << "--site out of range for --peers\n";
    return 1;
  }
  const auto blocks = static_cast<std::size_t>(flags.get_int("blocks"));
  const auto block_size = static_cast<std::size_t>(flags.get_int("block-size"));

  // Open or create the persistent store.
  std::string store_path = flags.get_string("store");
  if (store_path.empty()) {
    store_path = "/tmp/reldev_site" + std::to_string(site) + ".rdev";
  }
  std::unique_ptr<storage::FileBlockStore> store;
  bool fresh = false;
  if (auto opened = storage::FileBlockStore::open(store_path); opened) {
    store = std::move(opened).value();
    if (store->block_count() != blocks || store->block_size() != block_size) {
      std::cerr << "store geometry mismatch: " << store_path << '\n';
      return 1;
    }
  } else {
    auto created = storage::FileBlockStore::create(store_path, blocks,
                                                   block_size);
    if (!created) {
      std::cerr << created.status().to_string() << '\n';
      return 1;
    }
    store = std::move(created).value();
    fresh = true;
  }

  if (const auto threads = flags.get_int("fanout-threads"); threads > 0) {
    net::FanOut::set_shared_thread_count(static_cast<std::size_t>(threads));
  }

  // Wire up the peer transport.
  net::tcp::TcpPeerTransport transport;
  transport.set_call_timeout(
      std::chrono::milliseconds(flags.get_int("call-timeout-ms")));
  for (storage::SiteId peer = 0; peer < n; ++peer) {
    if (peer == site) continue;
    transport.set_endpoint(peer, peers.value()[peer].host,
                           peers.value()[peer].port);
  }

  const auto config = core::GroupConfig::majority(n, blocks, block_size);
  std::unique_ptr<core::ReplicaBase> replica;
  const std::string scheme = flags.get_string("scheme");
  if (scheme == "voting") {
    replica = std::make_unique<core::VotingReplica>(site, config, *store,
                                                    transport);
  } else if (scheme == "naive-available-copy") {
    replica = std::make_unique<core::NaiveAvailableCopyReplica>(
        site, config, *store, transport);
  } else if (scheme == "available-copy") {
    replica = std::make_unique<core::AvailableCopyReplica>(site, config,
                                                           *store, transport);
  } else {
    std::cerr << "unknown scheme '" << scheme << "'\n";
    return 1;
  }

  net::tcp::ServerOptions server_options;
  const std::string server_mode = flags.get_string("server-mode");
  if (server_mode == "reactor") {
    server_options.mode = net::tcp::ServerOptions::Mode::kReactor;
  } else if (server_mode == "thread-per-conn") {
    server_options.mode = net::tcp::ServerOptions::Mode::kThreadPerConnection;
  } else {
    std::cerr << "unknown server mode '" << server_mode << "'\n";
    return 1;
  }
  server_options.loop_shards =
      static_cast<std::size_t>(flags.get_int("loop-shards"));
  server_options.handler_threads =
      static_cast<std::size_t>(flags.get_int("handler-threads"));
  const std::string io_backend = flags.get_string("io-backend");
  if (io_backend == "io_uring") {
    server_options.backend = net::tcp::EventLoop::Backend::kIoUring;
  } else if (io_backend != "epoll") {
    std::cerr << "unknown io backend '" << io_backend << "'\n";
    return 1;
  }
  // Replica handlers block (storage I/O, peer fan-out), so handlers stay
  // on the worker pool; inline_handlers is for CPU-only handlers.

  auto server = net::tcp::TcpServer::start(
      static_cast<std::uint16_t>(flags.get_int("port")), replica.get(),
      server_options);
  if (!server) {
    std::cerr << server.status().to_string() << '\n';
    return 1;
  }
  std::cout << "site " << site << " (" << replica->scheme_name()
            << ") serving on port " << server.value()->port() << " ["
            << server_mode
            << (server_options.mode == net::tcp::ServerOptions::Mode::kReactor
                    ? (server.value()->backend() ==
                               net::tcp::EventLoop::Backend::kIoUring
                           ? ", io_uring"
                           : ", epoll")
                    : "")
            << "], store " << store_path
            << (fresh ? " (fresh)" : " (reopened)") << '\n';

  // A restarted site must not serve stale data: run recovery until it
  // succeeds (peers may still be coming up).
  if (!fresh) {
    std::cout << "running recovery against peers...\n";
    while (g_stop == 0) {
      const auto status = replica->recover();
      if (status.is_ok()) break;
      std::cout << "  still comatose: " << status.to_string() << '\n';
      struct timespec delay{1, 0};
      nanosleep(&delay, nullptr);
    }
    std::cout << "recovered; state: "
              << net::site_state_name(replica->state()) << '\n';
  }

  // Background anti-entropy: walk the device in batches, exchange digests
  // with the peers, heal stale/rotted blocks — throttled so it never
  // competes with foreground traffic. Started only after recovery, so the
  // scrubber never runs over a state the scheme has not vouched for.
  std::unique_ptr<core::ScrubDaemon> scrubber;
  if (const auto interval = flags.get_int("scrub-interval"); interval > 0) {
    core::ScrubOptions scrub_options;
    scrub_options.cycle_interval = std::chrono::milliseconds(interval);
    scrub_options.bytes_per_sec = static_cast<std::uint64_t>(
        std::max<std::int64_t>(flags.get_int("scrub-throttle"), 0));
    scrub_options.jitter_seed = site + 1;  // desynchronize the fleet
    scrubber = std::make_unique<core::ScrubDaemon>(*replica, scrub_options);
    scrubber->start();
    std::cout << "scrub daemon: every " << interval << " ms"
              << (scrub_options.bytes_per_sec != 0
                      ? ", " + std::to_string(scrub_options.bytes_per_sec) +
                            " B/s budget"
                      : ", unthrottled")
              << '\n';
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    struct timespec delay{0, 200 * 1000 * 1000};
    nanosleep(&delay, nullptr);
  }
  std::cout << "shutting down site " << site << '\n';
  if (scrubber) {
    scrubber->stop();
    std::cout << "scrub: " << core::format_scrub_stats(scrubber->stats())
              << '\n';
  }
  server.value()->stop();
  return 0;
}
