// Interactive analytical explorer: prints §4's availability figures and
// §5's traffic costs for a chosen group size and failure/repair ratio.
//
//   ./availability_tables --n=4 --rho=0.05 --reads-per-write=2.5
#include <cmath>
#include <iostream>

#include "reldev/analysis/availability.hpp"
#include "reldev/analysis/traffic.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;
using analysis::Scheme;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("n", 3, "number of copies for the available-copy schemes");
  flags.add_double("rho", 0.05, "failure rate / repair rate");
  flags.add_double("reads-per-write", 2.5,
                   "read:write ratio for the traffic table (the paper cites "
                   "~2.5:1 from BSD traces)");
  flags.add_bool("csv", false, "emit CSV instead of tables");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("availability_tables");
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const double rho = flags.get_double("rho");
  const double x = flags.get_double("reads-per-write");
  const bool csv = flags.get_bool("csv");
  if (n < 2 || rho < 0.0) {
    std::cerr << "need n >= 2 and rho >= 0\n";
    return 1;
  }

  std::cout << "single-site availability at rho=" << rho << ": "
            << TextTable::fmt(analysis::site_availability(rho), 6) << "\n\n";

  TextTable availability({"scheme", "copies", "availability", "nines"});
  availability.set_title("Availability (steady state)");
  const auto add = [&](const std::string& name, std::size_t copies, double a) {
    const double nines = a >= 1.0 ? 99.0 : -std::log10(1.0 - a);
    availability.add_row({name, std::to_string(copies), TextTable::fmt(a, 8),
                          TextTable::fmt(nines, 2)});
  };
  add("voting", 2 * n - 1, analysis::voting_availability(2 * n - 1, rho));
  add("voting", 2 * n, analysis::voting_availability(2 * n, rho));
  add("available-copy", n, analysis::available_copy_availability(n, rho));
  add("naive-available-copy", n,
      analysis::naive_available_copy_availability(n, rho));
  if (csv) {
    availability.print_csv(std::cout);
  } else {
    availability.print(std::cout);
  }
  std::cout << '\n';

  TextTable traffic({"scheme", "mode", "write", "read", "recovery",
                     "write + " + TextTable::fmt(x, 1) + " reads"});
  traffic.set_title("Expected high-level transmissions per operation (n = " +
                    std::to_string(n) + ")");
  for (const auto scheme :
       {Scheme::kVoting, Scheme::kAvailableCopy, Scheme::kNaiveAvailableCopy}) {
    for (const auto mode :
         {net::AddressingMode::kMulticast, net::AddressingMode::kUnique}) {
      const auto costs = analysis::operation_costs(scheme, mode, n, rho);
      traffic.add_row(
          {analysis::scheme_name(scheme),
           mode == net::AddressingMode::kMulticast ? "multicast" : "unique",
           TextTable::fmt(costs.write, 3), TextTable::fmt(costs.read, 3),
           TextTable::fmt(costs.recovery, 3),
           TextTable::fmt(analysis::workload_cost(scheme, mode, n, rho, x),
                          3)});
    }
  }
  if (csv) {
    traffic.print_csv(std::cout);
  } else {
    traffic.print(std::cout);
  }
  return 0;
}
