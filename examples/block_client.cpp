// Block-level client for the reliable device daemons: the device-driver
// stub of Figure 1 as a command-line tool.
//
//   ./block_client --servers=127.0.0.1:7000,127.0.0.1:7001 write 3 "hello"
//   ./block_client --servers=127.0.0.1:7000,127.0.0.1:7001 read 3
//   ./block_client --servers=... info
//   ./block_client --servers=... bench 100
#include <chrono>
#include <cstring>
#include <iostream>

#include "reldev/core/driver_stub.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/util/flags.hpp"

using namespace reldev;

namespace {

constexpr storage::SiteId kClientId = 1000;

Result<std::vector<std::pair<std::string, std::uint16_t>>> parse_servers(
    const std::string& text) {
  std::vector<std::pair<std::string, std::uint16_t>> servers;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    const auto colon = item.rfind(':');
    if (colon == std::string::npos) {
      return errors::invalid_argument("server '" + item + "' not host:port");
    }
    servers.emplace_back(item.substr(0, colon),
                         static_cast<std::uint16_t>(
                             std::stoi(item.substr(colon + 1))));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (servers.empty()) return errors::invalid_argument("no servers");
  return servers;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_string("servers", "127.0.0.1:7000",
                   "comma-separated site-server addresses, tried in order");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested() || flags.positional().empty()) {
    std::cout << flags.usage(argv[0])
              << "commands:\n"
                 "  info                 print device geometry\n"
                 "  read <block>         read one block, print as text\n"
                 "  write <block> <text> write text into one block\n"
                 "  bench <count>        time <count> write+read pairs\n";
    return flags.help_requested() ? 0 : 1;
  }

  auto servers = parse_servers(flags.get_string("servers"));
  if (!servers) {
    std::cerr << servers.status().to_string() << '\n';
    return 1;
  }
  net::tcp::TcpPeerTransport transport;
  std::vector<storage::SiteId> ids;
  for (std::size_t i = 0; i < servers.value().size(); ++i) {
    const auto id = static_cast<storage::SiteId>(i);
    transport.set_endpoint(id, servers.value()[i].first,
                           servers.value()[i].second);
    ids.push_back(id);
  }
  auto stub = core::DriverStub::connect(transport, kClientId, ids);
  if (!stub) {
    std::cerr << "connect: " << stub.status().to_string() << '\n';
    return 1;
  }

  const auto& args = flags.positional();
  const std::string& command = args[0];
  if (command == "info") {
    std::cout << "block_count=" << stub.value().block_count()
              << " block_size=" << stub.value().block_size() << '\n';
    return 0;
  }
  if (command == "read" && args.size() == 2) {
    const auto block = static_cast<storage::BlockId>(std::stoull(args[1]));
    auto data = stub.value().read_block(block);
    if (!data) {
      std::cerr << data.status().to_string() << '\n';
      return 1;
    }
    const std::string text(reinterpret_cast<const char*>(data.value().data()),
                           data.value().size());
    std::cout << text.substr(0, text.find('\0')) << '\n';
    return 0;
  }
  if (command == "write" && args.size() == 3) {
    const auto block = static_cast<storage::BlockId>(std::stoull(args[1]));
    storage::BlockData data(stub.value().block_size(), std::byte{0});
    std::memcpy(data.data(), args[2].data(),
                std::min(args[2].size(), data.size()));
    const auto status = stub.value().write_block(block, data);
    std::cout << status.to_string() << '\n';
    return status.is_ok() ? 0 : 1;
  }
  if (command == "bench" && args.size() == 2) {
    const int count = std::stoi(args[1]);
    storage::BlockData data(stub.value().block_size(), std::byte{0x5a});
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < count; ++i) {
      const auto block =
          static_cast<storage::BlockId>(i) % stub.value().block_count();
      if (!stub.value().write_block(block, data).is_ok() ||
          !stub.value().read_block(block).is_ok()) {
        std::cerr << "operation " << i << " failed\n";
        return 1;
      }
    }
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::cout << count << " write+read pairs in " << elapsed << " s ("
              << static_cast<int>(2 * count / elapsed) << " ops/s)\n";
    return 0;
  }
  std::cerr << "unknown command; run with --help\n";
  return 1;
}
